module Simpoint = Elfie_simpoint.Simpoint
module Perf = Elfie_perf.Perf
module Supervisor = Elfie_supervise.Supervisor
module Classify = Elfie_supervise.Classify
module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

let m_coverage =
  Metrics.gauge "elfie_pipeline_coverage"
    ~help:"Execution weight covered by gracefully re-executed regions \
           in the most recent validation"

let m_degradations =
  Metrics.counter "elfie_pipeline_degradations_total"
    ~help:"Graceful-degradation events during validation, by action"

type region_outcome = {
  region : Simpoint.region;
  rank_used : int option;
  elfie_sample : Perf.sample option;
  elfie_sample2 : Perf.sample option;
  sim_cpi : float option;
}

type deg_action =
  | Seed_retried of { retries : int; seed : int64 }
  | Alternate_used of { rank : int }
  | Quarantined of { classification : Classify.t; attempts : int }
  | Abandoned

type degradation = {
  deg_cluster : int;
  deg_action : deg_action;
  deg_detail : string;
}

let pp_degradation fmt d =
  let action =
    match d.deg_action with
    | Seed_retried { retries; seed } ->
        Printf.sprintf "recovered after %d seed retry(ies) (seed %Ld)" retries
          seed
    | Alternate_used { rank } ->
        Printf.sprintf "fell back to alternate region rank %d" rank
    | Quarantined { classification; attempts } ->
        Printf.sprintf "quarantined after %d attempt(s): %s" attempts
          (Classify.to_string classification)
    | Abandoned -> "abandoned: every alternate failed"
  in
  Format.fprintf fmt "cluster %d: %s — %s" d.deg_cluster action d.deg_detail

type validation = {
  bench : string;
  total_ins : int64;
  num_slices : int;
  k : int;
  coverage : float;
  native_whole : Perf.sample;
  elfie_pred_cpi : float;
  elfie_error : float;
  elfie_error2 : float option;
  sim_whole_cpi : float option;
  sim_pred_cpi : float option;
  sim_error : float option;
  regions : region_outcome list;
  degradations : degradation list;
}

let workdir = "/work"

let make_region_elfie run_spec ~name ~warmup ~start ~length =
  match
    Elfie_pin.Logger.capture run_spec ~name
      { Elfie_pin.Logger.start; length }
  with
  | exception Elfie_pin.Logger.Unsupported _ -> None
  | { pinball; reached_end } ->
      if not reached_end then None
      else begin
        let sysstate = Elfie_pin.Sysstate.analyze pinball in
        let options =
          {
            Elfie_core.Pinball2elf.default_options with
            sysstate = Some sysstate;
            marker = Some (Elfie_core.Pinball2elf.Ssc 0x4649L);
            warmup_mark = (if warmup > 0L then Some warmup else None);
          }
        in
        Some (Elfie_core.Pinball2elf.convert ~options pinball, sysstate)
      end

(* Region measurement (both entry points below) warms each ELFie once
   per attempt and forks the copy-on-write capture per trial — see
   Perf.elfie_region — so adding trials costs slice execution only, not
   repeated warmups, and results stay identical at any [--jobs]. *)
let measure_elfie ?(trials = 3) ?(base_seed = 2000L) (image, sysstate) =
  Perf.elfie_region ~trials ~base_seed
    ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir)
    ~cwd:workdir image

(* Graceful recovery, layer 1 — driven by the supervisor: an ELFie whose
   trials all fail (the classic cause is a stack collision with the
   randomized native stack) is retried under fresh stack-randomization
   seeds according to its crash classification: collisions and syscall
   failures reseed up to [max_seed_retries] times, runaways get one
   raised instruction budget, anything else quarantines immediately.
   Returns the supervisor's report plus the accepted sample. *)
let measure_supervised ~trials ~base_seed ~max_seed_retries ?journal ~job
    (image, sysstate) =
  let policy =
    { Supervisor.default_policy with retries = max_seed_retries; base_seed }
  in
  Supervisor.supervise ~job ~policy ?journal ~resume:false
    ~inputs:[ job; Int64.to_string base_seed; string_of_int trials ]
    (fun ~attempt_no:_ ~seed ~budget:_ ->
      let sample, outcomes =
        Perf.elfie_region_detailed ~trials ~base_seed:seed
          ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir)
          ~cwd:workdir image
      in
      let cls =
        if sample.Perf.failures < trials then Classify.Graceful
        else
          match
            List.find_opt
              (fun (o : Elfie_core.Elfie_runner.outcome) -> not o.graceful)
              outcomes
          with
          | Some o -> Classify.of_outcome o
          | None -> Classify.Backend_error "no trials ran"
      in
      (Some sample, cls))

(* Simulate one region ELFie on the user-level CoreSim model, measuring
   past the warmup prefix only (the traditional validation path). A
   simulation that the instruction cap had to stop classifies as a
   runaway and is quarantined after one raised-budget retry. *)
let simulate_region ?journal ~job (image, sysstate) ~warmup =
  let budget = { Supervisor.unlimited with ins = Some 100_000_000L } in
  Supervisor.run_backend ~job ~budget ?journal ~resume:false ~inputs:[ job ]
    (fun ~seed:_ ~max_ins ->
      let r =
        Elfie_coresim.Coresim.simulate ~mode:Elfie_coresim.Coresim.User_level
          ?measure_after:(if warmup > 0L then Some warmup else None)
          ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir)
          ~cwd:workdir
          ?max_ins Elfie_coresim.Coresim.skylake image
      in
      ( r.Elfie_coresim.Coresim.cpi,
        if r.Elfie_coresim.Coresim.completed then Classify.Graceful
        else Classify.Runaway ))

(* Pure per-request outcome of one region measurement, produced on a
   pool worker and merged into the shared tables afterwards (in request
   order) so parallel validation reports the same degradation sequence
   as sequential. *)
type req_result =
  | Req_skipped
  | Req_ok of {
      sample : Perf.sample;
      seed_retry : (int * int64) option;  (* retries, last seed *)
      sample2 : Perf.sample option;
      sim_cpi : float option;
      sim_quarantine : (Classify.t * int) option;
    }
  | Req_quarantined of { classification : Classify.t; attempts : int }

let validate ?jobs ?(params = Simpoint.default_params) ?(trials = 3)
    ?(base_seed = 2000L) ?second_base_seed ?(with_simulation = false)
    ?(max_alternates = 3) ?(max_seed_retries = 2) ?journal ?store ?shard
    ?(elfie_options = fun (_ : Simpoint.region) o -> o)
    (b : Elfie_workloads.Suite.benchmark) =
  let run_spec = Elfie_workloads.Programs.run_spec b.spec in
  (* With a farm store attached, the profile and selection are served
     from the content-addressed cache when the program bytes and
     parameters match a previous run; the farm's key layering means a
     changed [max_k] still hits the cached BBV profile. A shard router
     adds the remote daemon tier between the local store and compute. *)
  let backend =
    match (shard, store) with
    | Some sh, _ -> Some (Elfie_farm.Shard.backend sh)
    | None, Some store -> Some (Elfie_farm.Codec.store_backend store)
    | None, None -> None
  in
  let cached kind_key fetch_fn compute =
    match backend with
    | None -> compute ()
    | Some bk ->
        let program =
          Bytes.to_string
            (Elfie_elf.Image.write (Elfie_workloads.Programs.image b.spec))
        in
        fetch_fn bk (kind_key ~program) compute
  in
  let profile =
    Trace.with_span "pipeline.profile"
      ~attrs:[ ("bench", Trace.S b.bname) ]
      (fun _ ->
        cached
          (fun ~program ->
            Elfie_farm.Codec.bbv_key ~program
              ~slice_size:params.Simpoint.slice_size ())
          (fun bk k f -> Elfie_farm.Codec.fetch_bbv bk k f)
          (fun () ->
            Elfie_pin.Bbv.profile run_spec
              ~slice_size:params.Simpoint.slice_size))
  in
  let sel =
    Trace.with_span "pipeline.select" (fun sp ->
        let sel =
          cached
            (fun ~program -> Elfie_farm.Codec.selection_key ~program ~params ())
            (fun bk k f -> Elfie_farm.Codec.fetch_selection bk k f)
            (fun () -> Simpoint.select ?jobs ~params profile)
        in
        Trace.add_attr sp "k" (Trace.I (Int64.of_int sel.Simpoint.k));
        sel)
  in
  let native_whole =
    Trace.with_span "pipeline.native_whole" (fun _ ->
        Perf.whole_program ~trials ~base_seed run_spec)
  in
  (* Rank by rank: batch-capture all still-unresolved clusters' regions
     in a single program execution, convert and measure each, and fall
     back to the next alternate for clusters whose ELFie fails — the
     paper's alternate-region-selection loop. *)
  let clusters =
    Array.to_list sel.Simpoint.alternates |> List.filter (fun l -> l <> [])
  in
  let resolved : (int, region_outcome) Hashtbl.t = Hashtbl.create 16 in
  let degradations = ref [] in
  let degrade d =
    let action =
      match d.deg_action with
      | Seed_retried _ -> "seed_retried"
      | Alternate_used _ -> "alternate_used"
      | Quarantined _ -> "quarantined"
      | Abandoned -> "abandoned"
    in
    Metrics.inc m_degradations ~labels:[ ("action", action) ];
    degradations := d :: !degradations
  in
  let rank = ref 0 in
  let pending = ref clusters in
  let regions_sp = Trace.begin_span "pipeline.regions" in
  while !pending <> [] && !rank < max_alternates do
    let wanted =
      List.filter_map
        (fun alts -> List.nth_opt alts !rank |> Option.map (fun r -> r))
        !pending
    in
    let requests =
      List.map
        (fun (r : Simpoint.region) ->
          ( Printf.sprintf "%s_c%d_r%d" b.bname r.cluster r.rank,
            (r, { Elfie_pin.Logger.start = r.start; length = r.length }) ))
        wanted
    in
    let captured =
      Elfie_pin.Logger.capture_many run_spec
        (List.map (fun (n, (_, req)) -> (n, req)) requests)
    in
    (* Each request is an independent job (its seeds derive from the job
       name and [base_seed], not from execution order), so one rank's
       regions measure in parallel on the pool; results merge below in
       request order, keeping [degradations] and [resolved]
       deterministic. *)
    let process (name, (r, _)) =
      match List.assoc_opt name captured with
      | Some { Elfie_pin.Logger.pinball; reached_end = true } -> (
          let sysstate = Elfie_pin.Sysstate.analyze pinball in
          let options =
            elfie_options r
              {
                Elfie_core.Pinball2elf.default_options with
                sysstate = Some sysstate;
                marker = Some (Elfie_core.Pinball2elf.Ssc 0x4649L);
                warmup_mark =
                  (if r.Simpoint.warmup_actual > 0L then
                     Some r.Simpoint.warmup_actual
                   else None);
              }
          in
          let elfie =
            (Elfie_core.Pinball2elf.convert ~options pinball, sysstate)
          in
          let report, sample =
            measure_supervised ~trials ~base_seed ~max_seed_retries ?journal
              ~job:name elfie
          in
          match sample with
          | Some sample when not report.Supervisor.quarantined ->
              let primary =
                List.filter
                  (fun (a : Supervisor.attempt) -> not a.escalated)
                  report.Supervisor.attempts
              in
              let retries = List.length primary - 1 in
              let seed_retry =
                if retries > 0 then
                  let last = List.nth primary retries in
                  Some (retries, last.Supervisor.attempt_seed)
                else None
              in
              let sample2 =
                Option.map
                  (fun seed -> measure_elfie ~trials ~base_seed:seed elfie)
                  second_base_seed
              in
              let sim_cpi, sim_quarantine =
                if with_simulation then begin
                  let sim_job = name ^ "_sim" in
                  let sim_report, cpi =
                    simulate_region ?journal ~job:sim_job elfie
                      ~warmup:r.Simpoint.warmup_actual
                  in
                  ( cpi,
                    if sim_report.Supervisor.quarantined then
                      Some
                        ( sim_report.Supervisor.final,
                          List.length sim_report.Supervisor.attempts )
                    else None )
                end
                else (None, None)
              in
              Req_ok { sample; seed_retry; sample2; sim_cpi; sim_quarantine }
          | Some _ | None ->
              (* The supervisor exhausted its retry budget (or hit an
                 unretryable class): quarantine this alternate and let
                 the loop fall back to the cluster's next rank. *)
              Req_quarantined
                {
                  classification = report.Supervisor.final;
                  attempts = List.length report.Supervisor.attempts;
                })
      | Some _ | None -> Req_skipped
    in
    let results = Elfie_util.Pool.map ?jobs process requests in
    List.iter2
      (fun (name, (r, _)) result ->
        match result with
        | Req_skipped -> ()
        | Req_ok { sample; seed_retry; sample2; sim_cpi; sim_quarantine } ->
            (match seed_retry with
            | Some (retries, seed) ->
                degrade
                  {
                    deg_cluster = r.Simpoint.cluster;
                    deg_action = Seed_retried { retries; seed };
                    deg_detail =
                      Printf.sprintf
                        "region rank %d failed all %d trial(s) at base seed \
                         %Ld"
                        r.Simpoint.rank trials base_seed;
                  }
            | None -> ());
            if r.Simpoint.rank > 0 then
              degrade
                {
                  deg_cluster = r.Simpoint.cluster;
                  deg_action = Alternate_used { rank = r.Simpoint.rank };
                  deg_detail =
                    Printf.sprintf
                      "higher-ranked representative(s) did not re-execute \
                       gracefully";
                };
            (match sim_quarantine with
            | Some (classification, attempts) ->
                degrade
                  {
                    deg_cluster = r.Simpoint.cluster;
                    deg_action = Quarantined { classification; attempts };
                    deg_detail = Printf.sprintf "simulation job %s_sim" name;
                  }
            | None -> ());
            Hashtbl.replace resolved r.Simpoint.cluster
              {
                region = r;
                rank_used = Some r.Simpoint.rank;
                elfie_sample = Some sample;
                elfie_sample2 = sample2;
                sim_cpi;
              }
        | Req_quarantined { classification; attempts } ->
            degrade
              {
                deg_cluster = r.Simpoint.cluster;
                deg_action = Quarantined { classification; attempts };
                deg_detail = Printf.sprintf "region job %s" name;
              })
      requests results;
    pending :=
      List.filter
        (fun alts ->
          match alts with
          | (r : Simpoint.region) :: _ -> not (Hashtbl.mem resolved r.cluster)
          | [] -> false)
        !pending;
    incr rank
  done;
  Trace.end_span regions_sp
    ~attrs:[ ("resolved", Trace.I (Int64.of_int (Hashtbl.length resolved))) ];
  let summarize_sp = Trace.begin_span "pipeline.summarize" in
  let regions =
    List.map
      (fun alts ->
        let rep = List.hd alts in
        match Hashtbl.find_opt resolved rep.Simpoint.cluster with
        | Some outcome -> outcome
        | None ->
            degrade
              {
                deg_cluster = rep.Simpoint.cluster;
                deg_action = Abandoned;
                deg_detail =
                  Printf.sprintf
                    "no alternate among the first %d re-executed gracefully \
                     (weight %.3f lost)"
                    (min max_alternates (List.length alts))
                    rep.Simpoint.weight;
              };
            { region = rep; rank_used = None; elfie_sample = None;
              elfie_sample2 = None; sim_cpi = None })
      clusters
  in
  let covered =
    List.filter (fun ro -> ro.rank_used <> None) regions
  in
  let coverage =
    List.fold_left (fun acc ro -> acc +. ro.region.Simpoint.weight) 0.0 covered
  in
  let weighted f =
    let num, den =
      List.fold_left
        (fun (num, den) ro ->
          match f ro with
          | Some v -> (num +. (ro.region.Simpoint.weight *. v), den +. ro.region.Simpoint.weight)
          | None -> (num, den))
        (0.0, 0.0) covered
    in
    if den > 0.0 then Some (num /. den) else None
  in
  let elfie_pred_cpi =
    Option.value ~default:0.0
      (weighted (fun ro ->
           Option.map (fun s -> s.Perf.mean_cpi) ro.elfie_sample))
  in
  let whole_cpi = native_whole.Perf.mean_cpi in
  let rel_err whole pred =
    if whole = 0.0 then 0.0 else Float.abs (whole -. pred) /. whole
  in
  let elfie_error2 =
    if second_base_seed = None then None
    else
      weighted (fun ro -> Option.map (fun s -> s.Perf.mean_cpi) ro.elfie_sample2)
      |> Option.map (rel_err whole_cpi)
  in
  let sim_whole_cpi, sim_pred_cpi, sim_error =
    if with_simulation then begin
      let image = Elfie_workloads.Programs.image b.spec in
      let fs_init fs =
        if b.spec.Elfie_workloads.Programs.file_io then
          Elfie_kernel.Fs.add_file fs ~path:"/input.dat"
            Elfie_workloads.Programs.input_file_content
      in
      let whole =
        Elfie_coresim.Coresim.simulate ~mode:Elfie_coresim.Coresim.User_level
          ~from_marker:false ~fs_init Elfie_coresim.Coresim.skylake image
      in
      let sim_whole = whole.Elfie_coresim.Coresim.cpi in
      let pred = weighted (fun ro -> ro.sim_cpi) in
      ( Some sim_whole,
        pred,
        Option.map (fun p -> rel_err sim_whole p) pred )
    end
    else (None, None, None)
  in
  Metrics.set m_coverage coverage;
  Trace.end_span summarize_sp ~attrs:[ ("coverage", Trace.F coverage) ];
  {
    bench = b.bname;
    total_ins = sel.Simpoint.total_instructions;
    num_slices = sel.Simpoint.num_slices;
    k = sel.Simpoint.k;
    coverage;
    native_whole;
    elfie_pred_cpi;
    elfie_error = rel_err whole_cpi elfie_pred_cpi;
    elfie_error2;
    sim_whole_cpi;
    sim_pred_cpi;
    sim_error;
    regions;
    degradations = List.rev !degradations;
  }
