(** The PinPoints pipeline: profile -> SimPoint -> pinballs -> ELFies ->
    validation, shared by the Fig. 9/10 and Table II/III experiments.

    Implements the paper's methodology end to end, including
    {e alternate region selection}: when a cluster's representative
    ELFie does not re-execute gracefully, the second- and third-best
    representatives are tried, recovering coverage (Section I). *)

type region_outcome = {
  region : Elfie_simpoint.Simpoint.region;  (** the region actually used *)
  rank_used : int option;  (** [None] when every alternate failed *)
  elfie_sample : Elfie_perf.Perf.sample option;
  elfie_sample2 : Elfie_perf.Perf.sample option;
      (** an independent second measurement instance (when requested) *)
  sim_cpi : float option;  (** CoreSim region CPI (when simulation is on) *)
}

(** Graceful-recovery audit trail. Every time the pipeline had to do
    more than measure a region's first ELFie at the first seed — retry
    with fresh stack-randomization seeds after an all-trials failure
    (typically a stack collision), fall back to a lower-ranked alternate
    region, or abandon a cluster entirely — one record lands here. *)
type deg_action =
  | Seed_retried of { retries : int; seed : int64 }
      (** recovered after [retries] reseeds; [seed] is the base seed
          that finally produced a graceful trial *)
  | Alternate_used of { rank : int }
      (** the cluster is represented by its rank-[rank] alternate *)
  | Quarantined of {
      classification : Elfie_supervise.Classify.t;
      attempts : int;
    }
      (** the supervisor exhausted its retry budget on this job (or hit
          an unretryable classification); the job's result is excluded *)
  | Abandoned  (** no alternate re-executed gracefully; coverage lost *)

type degradation = {
  deg_cluster : int;
  deg_action : deg_action;
  deg_detail : string;
}

val pp_degradation : Format.formatter -> degradation -> unit

type validation = {
  bench : string;
  total_ins : int64;
  num_slices : int;
  k : int;
  coverage : float;  (** summed weight of gracefully executing ELFies *)
  native_whole : Elfie_perf.Perf.sample;
  elfie_pred_cpi : float;
  elfie_error : float;  (** |whole - predicted| / whole, ELFie-based *)
  elfie_error2 : float option;  (** second ELFie-based instance *)
  sim_whole_cpi : float option;
  sim_pred_cpi : float option;
  sim_error : float option;  (** same, via whole-program simulation *)
  regions : region_outcome list;
  degradations : degradation list;  (** recovery actions, in order *)
}

(** Build one region ELFie: capture a fat pinball over the region,
    reconstruct sysstate, convert. Returns the image and the sysstate
    (for installing proxy files before runs). [None] if the program
    ended before the region start. *)
val make_region_elfie :
  Elfie_pin.Run.spec ->
  name:string ->
  warmup:int64 ->
  start:int64 ->
  length:int64 ->
  (Elfie_elf.Image.t * Elfie_pin.Sysstate.t) option

(** Measure a region ELFie natively over several trials. *)
val measure_elfie :
  ?trials:int ->
  ?base_seed:int64 ->
  Elfie_elf.Image.t * Elfie_pin.Sysstate.t ->
  Elfie_perf.Perf.sample

(** Full validation of simulation-region selection for one benchmark.
    [second_base_seed] adds an independent second set of ELFie
    measurements (Fig. 9 runs two instances).

    Recovery is driven by {!Elfie_supervise.Supervisor}: each region
    measurement is a supervised job whose failures are {e classified}
    (see {!Elfie_supervise.Classify}); stack collisions and syscall
    failures are reseeded up to [max_seed_retries] times (e.g. when the
    ELFie's stack sections collide with the randomized native stack),
    runaway executions get one raised instruction budget, and
    unretryable classes are quarantined before the pipeline falls back
    to the cluster's next ranked alternate region. Every recovery action
    — including quarantines — is recorded in [degradations], and, when
    [journal] is given, every supervised job appends a record to it
    (write-through only; the pipeline never skips from the journal).

    [elfie_options] post-processes the conversion options per region —
    primarily a hook for fault-injection tests.

    [store] attaches a farm artifact store: the BBV profile and the
    SimPoint selection are then served from the content-addressed cache
    (keyed by the program's serialized image bytes plus the clustering
    parameters) instead of being recomputed, with corrupt cache entries
    quarantined and recomputed transparently. [shard] layers a farm
    daemon tier on top ({!Elfie_farm.Shard}): local store first, then
    the key's owning daemon, then compute — a shard outage degrades to
    the local path, never fails the validation.

    [jobs] caps how many region measurements of one rank run
    concurrently on {!Elfie_util.Pool} domains (default: the pool's
    process default, i.e. the [--jobs] flag). Region seeds are fixed
    per job name, and per-rank results are merged in request order, so
    the validation — samples, degradation sequence, coverage — is
    identical at any [jobs] value. *)
val validate :
  ?jobs:int ->
  ?params:Elfie_simpoint.Simpoint.params ->
  ?trials:int ->
  ?base_seed:int64 ->
  ?second_base_seed:int64 ->
  ?with_simulation:bool ->
  ?max_alternates:int ->
  ?max_seed_retries:int ->
  ?journal:Elfie_supervise.Journal.t ->
  ?store:Elfie_farm.Store.t ->
  ?shard:Elfie_farm.Shard.t ->
  ?elfie_options:
    (Elfie_simpoint.Simpoint.region ->
     Elfie_core.Pinball2elf.options ->
     Elfie_core.Pinball2elf.options) ->
  Elfie_workloads.Suite.benchmark ->
  validation
