(* Fig. 9: prediction errors for SPEC CPU2017 train intrate regions,
   comparing the traditional simulation-based validation against two
   independent ELFie-based (native hardware) validation instances. *)

module Simpoint = Elfie_simpoint.Simpoint

let params = { Simpoint.default_params with max_k = 50 }

let results =
  lazy
    ((* Benchmarks validate independently (fixed seeds, one pipeline
        each), so the whole figure fans out across pool domains. *)
     Elfie_util.Pool.map
       (fun b ->
         ( b.Elfie_workloads.Suite.bname,
           Pipeline.validate ~params ~trials:3 ~base_seed:2000L
             ~second_base_seed:7000L ~with_simulation:true b ))
       Elfie_workloads.Suite.spec2017_int_train)

let run () =
  let rs = Lazy.force results in
  let series =
    List.map
      (fun (name, v) ->
        ( name,
          [ ("simulation", 100.0 *. Option.value ~default:0.0 v.Pipeline.sim_error);
            ("ELFie-1", 100.0 *. v.Pipeline.elfie_error);
            ("ELFie-2",
             100.0 *. Option.value ~default:0.0 v.Pipeline.elfie_error2) ] ))
      rs
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Render.bars ~unit_label:"%"
       ~title:
         "Fig. 9: CPI prediction error, simulation-based vs ELFie-based validation\n\
          (SPEC CPU2017 train intrate stand-ins)"
       series);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Render.table
       ~header:
         [ "benchmark"; "k"; "coverage"; "whole CPI"; "pred CPI"; "err(sim)";
           "err(ELFie-1)"; "err(ELFie-2)" ]
       (List.map
          (fun (name, v) ->
            [ name; string_of_int v.Pipeline.k; Render.pct v.Pipeline.coverage;
              Render.f3 v.Pipeline.native_whole.Elfie_perf.Perf.mean_cpi;
              Render.f3 v.Pipeline.elfie_pred_cpi;
              (match v.Pipeline.sim_error with Some e -> Render.pct e | None -> "-");
              Render.pct v.Pipeline.elfie_error;
              (match v.Pipeline.elfie_error2 with
              | Some e -> Render.pct e
              | None -> "-") ])
          rs));
  Buffer.contents buf
