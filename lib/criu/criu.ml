open Elfie_util
open Elfie_machine
open Elfie_kernel

type t = {
  pages : (int64 * bytes) list;
  contexts : Context.t array;
  fds : (int * Vkernel.fd_state) list;
  brk : int64;
  cwd : string;
}

let checkpoint machine kernel =
  let live =
    List.filter (fun th -> th.Machine.state = Machine.Runnable)
      (Machine.threads machine)
  in
  List.iteri
    (fun i th ->
      if th.Machine.tid <> i then
        failwith "Criu.checkpoint: exited thread leaves a tid gap")
    live;
  {
    (* Freeze the address space copy-on-write instead of deep-copying
       every page: the checkpoint aliases the live page bytes, and any
       later write in the checkpointed machine unshares its page first,
       so the aliased bytes stay exactly as captured. O(pages) pointer
       work, zero byte copies. *)
    pages = Addr_space.frozen_pages (Addr_space.freeze (Machine.mem machine));
    contexts = Array.of_list (List.map (fun th -> Context.copy th.Machine.ctx) live);
    fds = Vkernel.fd_table kernel;
    brk = Vkernel.brk kernel;
    cwd = Vkernel.cwd kernel;
  }

let restore ?(seed = 23L) ?timing t fs =
  let machine =
    Machine.create ?timing
      (Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  List.iter
    (fun (addr, data) -> Addr_space.store (Machine.mem machine) addr data)
    t.pages;
  let kernel =
    Vkernel.create
      ~config:{ Vkernel.default_config with seed; initial_cwd = t.cwd }
      fs
  in
  Vkernel.install kernel machine;
  Vkernel.force_brk kernel t.brk;
  List.iter (fun (fd, state) -> Vkernel.set_fd kernel fd state) t.fds;
  Array.iter (fun ctx -> ignore (Machine.add_thread machine (Context.copy ctx)))
    t.contexts;
  (machine, kernel)

(* --- serialization ---------------------------------------------------------- *)

let magic = 0x56435249 (* "IRCV" *)

let to_files t =
  let w = Byteio.Writer.create ~capacity:4096 () in
  Byteio.Writer.u32 w magic;
  Byteio.Writer.u32 w (List.length t.pages);
  List.iter
    (fun (addr, data) ->
      Byteio.Writer.u64 w addr;
      Byteio.Writer.u32 w (Bytes.length data);
      Byteio.Writer.bytes w data)
    t.pages;
  Byteio.Writer.u32 w (Array.length t.contexts);
  Array.iter
    (fun ctx ->
      let b = Context.to_bytes ctx in
      Byteio.Writer.u32 w (Bytes.length b);
      Byteio.Writer.bytes w b)
    t.contexts;
  Byteio.Writer.u32 w (List.length t.fds);
  List.iter
    (fun (fd, state) ->
      Byteio.Writer.u32 w fd;
      match state with
      | Vkernel.Fd_console -> Byteio.Writer.u8 w 0
      | Vkernel.Fd_file { path; pos } ->
          Byteio.Writer.u8 w 1;
          Byteio.Writer.u32 w (String.length path);
          Byteio.Writer.string w path;
          Byteio.Writer.u32 w pos)
    t.fds;
  Byteio.Writer.u64 w t.brk;
  Byteio.Writer.u32 w (String.length t.cwd);
  Byteio.Writer.string w t.cwd;
  [ ("image", Bytes.to_string (Byteio.Writer.contents w)) ]

let of_files files =
  let s =
    match List.assoc_opt "image" files with
    | Some s -> s
    | None -> failwith "Criu: missing image file"
  in
  let r = Byteio.Reader.of_string s in
  if Byteio.Reader.u32 r <> magic then failwith "Criu: bad magic";
  let n_pages = Byteio.Reader.u32 r in
  let pages =
    List.init n_pages (fun _ ->
        let addr = Byteio.Reader.u64 r in
        let len = Byteio.Reader.u32 r in
        (addr, Byteio.Reader.bytes r len))
  in
  let n_ctx = Byteio.Reader.u32 r in
  let contexts =
    Array.init n_ctx (fun _ ->
        let len = Byteio.Reader.u32 r in
        Context.of_bytes (Byteio.Reader.bytes r len))
  in
  let n_fds = Byteio.Reader.u32 r in
  let fds =
    List.init n_fds (fun _ ->
        let fd = Byteio.Reader.u32 r in
        match Byteio.Reader.u8 r with
        | 0 -> (fd, Vkernel.Fd_console)
        | _ ->
            let len = Byteio.Reader.u32 r in
            let path = Byteio.Reader.string_n r len in
            let pos = Byteio.Reader.u32 r in
            (fd, Vkernel.Fd_file { path; pos }))
  in
  let brk = Byteio.Reader.u64 r in
  let cwd_len = Byteio.Reader.u32 r in
  let cwd = Byteio.Reader.string_n r cwd_len in
  { pages; contexts; fds; brk; cwd }

let image_bytes t =
  match to_files t with [ (_, s) ] -> String.length s | _ -> assert false

let equal a b =
  List.equal (fun (x, p) (y, q) -> x = y && Bytes.equal p q) a.pages b.pages
  && Array.for_all2 Context.equal a.contexts b.contexts
  && a.fds = b.fds && a.brk = b.brk && a.cwd = b.cwd
