(** Vcriu: CRIU-style whole-process checkpoint/restore — the baseline
    the paper contrasts ELFies with (Sections I and V).

    A checkpoint captures the complete process state at one instant:
    every mapped page, every live thread's registers, the descriptor
    table (paths and file offsets), the program break and working
    directory. [restore] materialises the process on a fresh machine
    "on the same or a similar machine" — the filesystem is supplied by
    the caller, as CRIU relies on the host filesystem being present.

    The contrasts with ELFies that the paper draws are all observable
    here:

    - a checkpoint is {e not} an executable: it needs this restore
      machinery (the analogue of CRIU needing a matching kernel), while
      an ELFie runs under any ELF-consuming tool;
    - it is a point-in-time snapshot with {e no specified end}, whereas
      an ELFie represents a bounded region with a graceful exit;
    - it restores kernel state (open descriptors) exactly, where ELFies
      rely on the SYSSTATE approximation. *)

type t = {
  pages : (int64 * bytes) list;
  contexts : Elfie_machine.Context.t array;  (** live threads, dense *)
  fds : (int * Elfie_kernel.Vkernel.fd_state) list;
  brk : int64;
  cwd : string;
}

(** Snapshot a live process. Memory is captured copy-on-write: the
    checkpoint aliases the machine's page bytes (zero copies at capture
    time) and the machine's pages are frozen shared, so writes the
    process performs after the checkpoint copy their page first and the
    checkpoint is never perturbed. Raises [Failure] if a thread has
    exited (leaving a tid gap), which this simplified process model
    cannot restore. *)
val checkpoint : Elfie_machine.Machine.t -> Elfie_kernel.Vkernel.t -> t

(** Recreate the process, ready to continue, against the given
    filesystem. *)
val restore :
  ?seed:int64 ->
  ?timing:Elfie_machine.Timing.config ->
  t ->
  Elfie_kernel.Fs.t ->
  Elfie_machine.Machine.t * Elfie_kernel.Vkernel.t

(** Serialized image size in bytes (for size comparisons with pinballs
    and ELFies). *)
val image_bytes : t -> int

val to_files : t -> (string * string) list
val of_files : (string * string) list -> t
val equal : t -> t -> bool
