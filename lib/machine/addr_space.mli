(** Paged virtual address space.

    Pages are 4 KiB, allocated sparsely in a hash table keyed by page
    number. Accessing an unmapped address raises {!Fault}, which the
    machine turns into a thread-level page fault — this is how a
    diverging ELFie "exits ungracefully" when it touches a page that was
    not captured in its parent pinball. *)

type access = Read | Write | Exec

exception Fault of { addr : int64; access : access }

val page_size : int
val page_bits : int

(** Base address of the page containing [addr]. *)
val page_base : int64 -> int64

type t

val create : unit -> t

(** [map t ~addr ~len] maps (zero-filled) every page overlapping
    [addr, addr+len). Already-mapped pages keep their contents. *)
val map : t -> addr:int64 -> len:int -> unit

(** [unmap t ~addr ~len] drops every page overlapping the range. *)
val unmap : t -> addr:int64 -> len:int -> unit

val is_mapped : t -> int64 -> bool

(** True if any page overlapping [addr, addr+len) is mapped. *)
val any_mapped : t -> addr:int64 -> len:int -> bool

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit

(** [read t addr width] reads a [width]-byte little-endian value,
    zero-extended. [width] is 1, 2, 4 or 8. May cross pages. *)
val read : t -> int64 -> int -> int64

val write : t -> int64 -> int -> int64 -> unit

(** Quadword fast paths: a single page lookup and [Bytes] accessor when
    the access stays inside one page, falling back to [read]/[write]
    at page crossings. Semantically identical to [read t addr 8] /
    [write t addr 8 v], including fault addresses. *)
val read_u64 : t -> int64 -> int64

val write_u64 : t -> int64 -> int64 -> unit

(** Bulk reads/writes; fault on any unmapped byte. *)
val read_bytes : t -> int64 -> int -> bytes

val write_bytes : t -> int64 -> bytes -> unit

(** Like [write_bytes] but maps missing pages first (used by loaders). *)
val store : t -> int64 -> bytes -> unit

(** Read up to [len] bytes, stopping at the first unmapped page; used by
    the instruction fetcher at mapping boundaries. *)
val read_avail : t -> int64 -> int -> bytes

(** All mapped pages as [(page_base, contents)], sorted by address. The
    contents are copies. *)
val pages : t -> (int64 * bytes) list

val page_count : t -> int

(** Deep copy (pinball logger snapshot). *)
val copy : t -> t

(** {2 Copy-on-write snapshots}

    [freeze t] marks every mapped page as shared and returns an
    immutable view of the current image in O(pages) pointer work — no
    page contents are copied. From that moment the captured bytes are
    never mutated: the first write landing in a shared page (through
    [t] itself or through any fork) swaps in a private copy of that
    page first, so the frozen view stays byte-exact forever and each
    space pays only for the pages it actually touches.

    [fork f] materialises a fresh address space backed by the frozen
    bytes, again in O(pages) record allocation with zero byte copying.
    Forks are independent of each other and of the parent: the only
    shared state is the immutable frozen bytes, so forks may run on
    different domains concurrently. The fork starts with a cold
    soft-TLB and inherits the frozen generation counters. *)

type frozen

val freeze : t -> frozen
val fork : frozen -> t
val frozen_page_count : frozen -> int

(** The frozen image as [(page_base, contents)], sorted by address,
    {e aliasing} the frozen bytes (zero-copy). Callers must treat the
    bytes as read-only — the freeze contract already guarantees no
    machine will mutate them. *)
val frozen_pages : frozen -> (int64 * bytes) list

(** Pages privatised so far by writes into shared backing — the
    realised copy-on-write cost of this space, in pages. *)
val cow_copies : t -> int

(** [note_code t ~addr ~len] marks every mapped page overlapping
    [addr, addr+len) as holding decoded instructions. The executor calls
    this when it translates a block; from then on any write landing in
    those pages bumps {!generation} (page-granularity self-modifying
    code detection). *)
val note_code : t -> addr:int64 -> len:int -> unit

(** Monotonically increasing counter bumped on every [map]/[unmap]/
    [store] and on every write into a page previously marked by
    {!note_code}; lets the executor invalidate translated-block and
    decoded-instruction caches, including under self-modifying code. *)
val generation : t -> int

(** Count of writes that landed in {!note_code}-marked pages — the
    subset of {!generation} bumps caused by dirtying code rather than by
    mapping changes. Between system calls no page can be mapped or
    unmapped, so a batch executor may poll this single field as its
    "code dirtied since translation" fast-path flag: equality with the
    value sampled at translation time proves the translation is still
    valid mid-block. *)
val code_writes : t -> int
