(** Set-associative cache model with LRU replacement.

    Shared by the machine's built-in "hardware" timing model and by the
    Sniper/CoreSim/gem5 simulator substrates. Purely a hit/miss model:
    no data is stored, only tags. *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;  (** power of two *)
}

val config : size_bytes:int -> ways:int -> line_bytes:int -> config

type t

(** [create cfg] builds an empty cache. [track_footprint] (default
    [true]) controls whether every touched line is recorded for
    {!footprint_lines}; levels whose footprint is never read (the timing
    model's L1/L2) disable it to keep the per-access cost flat. *)
val create : ?track_footprint:bool -> config -> t

(** [access t addr] returns [true] on hit and updates LRU state;
    on miss the line is filled. *)
val access : t -> int64 -> bool

(** Independent structural clone — identical future hit/miss behaviour,
    identical stats, no shared mutable state (machine snapshots). *)
val copy : t -> t

val hits : t -> int
val misses : t -> int

(** Distinct lines ever touched — a data-footprint proxy. Always 0 when
    the cache was created with [~track_footprint:false]. *)
val footprint_lines : t -> int

val reset_stats : t -> unit

(** Drop all lines (e.g. a TLB flush perturbation), keeping stats. *)
val flush : t -> unit
