(** Per-thread architectural register state.

    Mirrors what a pinball [.reg] file captures: general-purpose
    registers, instruction pointer, flags, FS/GS bases, and the
    XSAVE-style extended state (here: 16 x 128-bit vector registers).
    The extended state has a fixed binary layout ({!xsave_size} bytes)
    loaded and stored by the [Ldctx]/[Stctx] instructions, mirroring
    XRSTOR/XSAVE. *)

type t = {
  gprs : Bytes.t;
      (** 16 × 8-byte host-endian register slots, indexed by
          [8 * Reg.gpr_index]. A byte buffer rather than an
          [int64 array] so register reads/writes move unboxed values
          (no allocation, no write barrier on the interpreter's hot
          path); access it through {!get}/{!set}/{!geti}/{!seti} or the
          raw-buffer pair {!bget}/{!bset}. *)
  mutable rip : int64;
  flags : Elfie_isa.Reg.flags;
  mutable fs_base : int64;
  mutable gs_base : int64;
  xmm : bytes;  (** [16 * Reg.xmm_count] bytes of vector state *)
}

val create : unit -> t
val copy : t -> t
val get : t -> Elfie_isa.Reg.gpr -> int64
val set : t -> Elfie_isa.Reg.gpr -> int64 -> unit

(** Index-based register access ([Reg.gpr_index] order). *)
val geti : t -> int -> int64

val seti : t -> int -> int64 -> unit

(** Unchecked accessors over the raw {!field-gprs} buffer, for compiled
    code that hoists the buffer out of its inner loop. [i] is a register
    index in [0, 15]. *)
val bget : Bytes.t -> int -> int64

val bset : Bytes.t -> int -> int64 -> unit

(** Lane accessors for the vector unit: [xmm_lane ctx i lane] reads
    64-bit lane 0 or 1 of register [i]. *)
val xmm_lane : t -> int -> int -> int64

val set_xmm_lane : t -> int -> int -> int64 -> unit

(** Byte size of the serialized extended-state area. *)
val xsave_size : int

(** Serialize the extended state (vector registers only, like the
    FXSAVE/XSAVE area of the paper's context structure part one). *)
val xsave : t -> bytes

(** Load extended state from an XSAVE image; raises [Invalid_argument]
    on short input. *)
val xrstor : t -> bytes -> unit

(** Full-context serialization, used by pinball [.reg] files. *)
val to_bytes : t -> bytes

val of_bytes : bytes -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
