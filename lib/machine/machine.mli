(** The VX86 machine: threads, interpreter, scheduler, instrumentation.

    This is the substrate everything runs on: native program execution
    (the paper's "real hardware"), Pin-style instrumented execution (the
    {!Elfie_pin} library attaches to the {!hooks}), constrained pinball
    replay (a {!Recorded} scheduler plus a syscall filter), and ELFie
    execution under the simulators.

    The machine is kernel-agnostic: system calls trap to a pluggable
    handler installed by {!Elfie_kernel}. *)

type fault =
  | Page_fault of { addr : int64; access : Addr_space.access; pc : int64 }
  | Invalid_opcode of int64  (** pc *)
  | Privileged of int64  (** [Hlt] in user mode *)

val pp_fault : Format.formatter -> fault -> unit

type thread_state = Runnable | Exited of int | Faulted of fault

type thread = {
  tid : int;
  ctx : Context.t;
  mutable state : thread_state;
  mutable retired : int64;  (** user instructions retired *)
  mutable cycles : int64;
  mutable counter_target : int64 option;
      (** armed retired-instruction counter: reaching it exits the
          thread gracefully (status 0) and sets [counter_fired] *)
  mutable counter_fired : bool;
  mutable arm_retired : int64;  (** retired count when the counter was armed *)
  mutable arm_cycles : int64;  (** cycle count when the counter was armed *)
  mutable mark_target : int64 option;
      (** pending warmup mark: when [retired] reaches it, a snapshot is
          taken (counters are read mid-run, as after a warmup phase) *)
  mutable mark_retired : int64 option;
  mutable mark_cycles : int64;
  mutable timer_left : int;  (** instructions until the next timer tick *)
}

(** Thread interleaving policy. [Free] models real concurrency with
    seeded pseudo-random quanta (run-to-run variation comes from the
    seed); [Recorded] enforces a previously captured schedule, which is
    what makes pinball replay *constrained*. *)
type scheduler =
  | Free of { seed : int64; quantum_min : int; quantum_max : int }
  | Recorded of (int * int) list

(** Instrumentation points. All default to [None]; the Pin layer and
    simulators fill them in. *)
type hooks = {
  mutable on_ins : (int -> int64 -> Elfie_isa.Insn.t -> unit) option;
      (** tid, pc, instruction — before execution *)
  mutable on_mem_read : (int -> int64 -> int -> unit) option;
      (** tid, address, width *)
  mutable on_mem_write : (int -> int64 -> int -> unit) option;
  mutable on_branch : (int -> int64 -> int64 -> bool -> unit) option;
      (** tid, pc, target, taken — conditional branches only *)
  mutable on_marker : (int -> Elfie_isa.Insn.t -> unit) option;
  mutable on_thread_start : (int -> unit) option;
  mutable on_thread_exit : (int -> int -> unit) option;  (** tid, status *)
}

type t

(** Decision taken by the syscall filter before the kernel runs. *)
type syscall_action = Run_syscall | Skip_syscall

val create : ?timing:Timing.config -> scheduler -> t
val mem : t -> Addr_space.t
val hooks : t -> hooks
val timing : t -> Timing.t

(** Install the kernel's syscall handler. The handler runs with the
    thread's RIP already advanced past the [Syscall] instruction. *)
val set_syscall_handler : t -> (t -> int -> unit) -> unit

(** Install a filter consulted before each system call; [Skip_syscall]
    suppresses the kernel handler (replay-time injection). *)
val set_syscall_filter : t -> (t -> int -> syscall_action) -> unit

(** [add_thread t ctx] registers a new runnable thread; returns its tid.
    Thread 0 is the initial thread by convention. *)
val add_thread : t -> Context.t -> int

val thread : t -> int -> thread
val threads : t -> thread list
val live_thread_count : t -> int

(** Terminate one thread (used by [exit]) or the whole process. *)
val exit_thread : t -> int -> status:int -> unit

val exit_all : t -> status:int -> unit

(** Status of the [exit_group]-style whole-process exit, if one
    happened. Threads it killed did not fault or diverge. *)
val group_exit_status : t -> int option

(** Arm the retired-instruction performance counter of a thread. *)
val arm_counter : t -> int -> target:int64 -> unit

(** Schedule a mid-run counter snapshot (warmup boundary) at an absolute
    retired count. *)
val arm_mark : t -> int -> target:int64 -> unit

(** Enable periodic timer interrupts: roughly every [interval] retired
    instructions per thread (jittered by [seed]), [cycles] of kernel
    work are charged to the running thread. This is the OS noise that
    makes repeated native-hardware measurements differ run to run. *)
val set_timer : t -> interval:int -> cycles:int -> seed:int64 -> unit

(** Ask the run loop to stop at the next instruction boundary. *)
val request_stop : t -> unit

(** Whether a stop has been requested (drivers running their own
    scheduling loop, like cycle-driven simulators, must poll this). *)
val stop_requested : t -> bool

(** Charge kernel-mode work to a thread: bumps its cycle count and the
    machine's ring-0 instruction counter but not user retired counts. *)
val charge_ring0 : t -> int -> instructions:int -> cycles:int -> unit

val ring0_retired : t -> int64

(** Record the interleaving of a [Free] run so it can later drive a
    [Recorded] one. *)
val set_record_schedule : t -> bool -> unit

val recorded_schedule : t -> (int * int) list

(** Force a boundary in the recorded schedule: the next quantum starts a
    fresh entry even for the same thread. Used by observers that slice
    the recording at known execution points. *)
val cut_schedule : t -> unit

(** Execute a single instruction of a thread. Faults are caught and
    recorded in the thread state. Raises [Invalid_argument] if the
    thread is not runnable. *)
val step : t -> int -> unit

(** Install (or clear) the basic-block observer, called once per
    executed block prefix with the block's instruction PCs, the number
    [n] of instructions attempted from its head, and whether the run
    ended on the block's terminating branch/call/syscall. This is the
    hook-free path the count-driven profiler rides: feeding
    [Elfie_obs.Profile.note_block] here is equivalent to one
    {!hooks.on_ins}-driven [note] per instruction, without any
    per-instruction dispatch. *)
val set_block_observer :
  t ->
  (tid:int -> pcs:int64 array -> n:int -> ends_block:bool -> unit) option ->
  unit

(** Number of distinct basic blocks currently translated (cache size
    after generation flushes — an observability counter). *)
val translated_blocks : t -> int

(** Enable/disable the superblock chain tier (on by default): on the
    fully uninstrumented path, blocks ending in a direct branch hop
    straight to their successor's translation without returning to the
    dispatch loop, with a cross-block flag-liveness pass eliding dead
    ALU flag materialisation. Architecturally invisible — disabling it
    only removes the speed tier (A/B benchmarking, differential
    tests). *)
val set_chain_enabled : t -> bool -> unit

(** Number of chain links currently installed between translated blocks
    (superblock edges of the live generation; invalidation resets it). *)
val translated_superblocks : t -> int

(** Monotone per-machine core-execution counters: block-memo efficacy,
    superblock link churn, and chain exits by reason. Mirrored into the
    [elfie_core_*] metric families at the end of every {!run}. *)
type chain_stats = {
  memo_hits : int;
  memo_misses : int;
  superblocks_built : int;
  superblocks_broken : int;
  exits_indirect : int;  (* indirect/unlinked tail reached *)
  exits_fuel : int;  (* event/quantum fuel below next block's length *)
  exits_fault : int;
  exits_invalidation : int;  (* code page dirtied mid-chain *)
  exits_stop : int;
}

val chain_stats : t -> chain_stats

(** Run until no thread is runnable, a stop is requested, or [max_ins]
    user instructions have retired machine-wide. *)
val run : ?max_ins:int64 -> t -> unit

(** Sum of user instructions retired over all threads. *)
val total_retired : t -> int64

(** Wall-clock proxy: maximum per-thread cycle count (threads execute in
    parallel on distinct cores). *)
val elapsed_cycles : t -> int64

(** True when every thread exited with status 0 (no faults, no nonzero
    exits). *)
val all_exited_cleanly : t -> bool

(** {2 Copy-on-write snapshots}

    [snapshot t] captures the machine in O(pages + threads) pointer
    work: the address space is frozen copy-on-write
    ({!Addr_space.freeze} — no page contents are copied; the first
    write to a shared page, by the parent or any fork, privatises just
    that page), contexts and the timing model are copied, and every RNG
    is duplicated at its exact stream position. The parent stays fully
    usable.

    [fork snap] materialises an independent machine from the capture,
    again without copying page contents. Forks share only the immutable
    frozen bytes, so any number of them may run concurrently on
    separate domains. Derived caches are deliberately not forked —
    the block cache, block memo, soft-TLB and superblock chain links
    are rebuilt lazily (they hold arrays that chain resolution mutates,
    so sharing them across forks would race); hooks, the block
    observer, the syscall handler/filter and any pending stop are
    reset, and the kernel must be re-installed on the fork.

    [fork ~reseed:seed snap] additionally re-derives the scheduler and
    timer RNG streams from [seed] at the fork point (dropping any
    partially consumed quantum). Applying {!reseed} with the same seed
    to an identically warmed fresh machine yields a bit-identical
    continuation — the per-trial variation handle used by
    warm-once/fork-many measurement, property-tested in
    [test/test_perf_core.ml]. *)

type snapshot

val snapshot : t -> snapshot
val fork : ?reseed:int64 -> snapshot -> t

(** The frozen memory image as [(page_base, contents)], sorted,
    aliasing the frozen bytes (zero-copy; treat as read-only). Used by
    the Vcriu checkpointer. *)
val snapshot_pages : snapshot -> (int64 * bytes) list

val snapshot_page_count : snapshot -> int

(** Restart the scheduler and timer RNG streams from [seed] at the
    current execution point, dropping any partially consumed scheduler
    quantum. See {!fork}. *)
val reseed : t -> int64 -> unit

(** Clear a previously requested (or {!set_stop_on_mark}-triggered)
    stop so {!run} can be called again to continue. *)
val clear_stop : t -> unit

(** When enabled, a firing warmup mark ({!arm_mark}) also requests a
    stop: {!run} returns right after the mark retires, leaving the
    machine warmed and ready for {!snapshot}. *)
val set_stop_on_mark : t -> bool -> unit
