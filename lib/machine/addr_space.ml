type access = Read | Write | Exec

exception Fault of { addr : int64; access : access }

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = Int64.of_int (page_size - 1)
let page_base addr = Int64.logand addr (Int64.lognot page_mask)
let page_number addr = Int64.shift_right_logical addr page_bits
let offset_in_page addr = Int64.to_int (Int64.logand addr page_mask)

(* A page carries its backing store plus a code bit: once the executor
   has decoded instructions out of a page, any later write to it must
   bump the generation counter so translated-block caches invalidate
   (self-modifying code). The bit makes that a single load on the write
   path instead of a code-range lookup.

   The [shared] bit is the copy-on-write machinery: [freeze] marks every
   page shared and records the byte pointers; from then on the frozen
   bytes are immutable by contract, and the first write through any
   space holding them swaps in a private copy first ([unshare], reached
   from [dirty], which every write path already goes through). A page
   record itself is never shared between spaces — only the frozen bytes
   are — so swapping [data] inside a record is invisible to every other
   space and to the soft-TLB, which caches records, not bytes. *)
type page = { mutable data : bytes; mutable is_code : bool; mutable shared : bool }

(* Soft-TLB: a small direct-mapped cache of recent page-number ->
   page translations in front of the hash table. Only [unmap] can make
   an entry stale (mapping never replaces an existing page), so entries
   are flushed wholesale there. Tags are page numbers as immediate
   [int]s (a 64-bit address shifted by the page bits fits 52 bits), so
   the probe is pointer- and allocation-free. *)
let tlb_bits = 6
let tlb_size = 1 lsl tlb_bits
let no_page = { data = Bytes.create 0; is_code = false; shared = false }

type t = {
  pages : (int64, page) Hashtbl.t;
  mutable generation : int;
  (* Writes that landed in code pages, separately from [generation]
     (which also counts map/unmap): between two system calls the only
     way [generation] can move is a code-page write, so executors can
     poll this single field as the "has anything been dirtied since
     translation" fast-path flag. *)
  mutable code_writes : int;
  (* Pages lazily privatised by a write to shared (frozen) backing —
     the fork cost actually paid, in pages touched. *)
  mutable cow_copies : int;
  tlb_tags : int array;  (* page number, or -1 for empty *)
  tlb_pages : page array;
}

let create () =
  {
    pages = Hashtbl.create 256;
    generation = 0;
    code_writes = 0;
    cow_copies = 0;
    tlb_tags = Array.make tlb_size (-1);
    tlb_pages = Array.make tlb_size no_page;
  }

let tlb_flush t =
  Array.fill t.tlb_tags 0 tlb_size (-1);
  Array.fill t.tlb_pages 0 tlb_size no_page

(* TLB-accelerated page lookup by immediate page number; raises
   [Not_found] when unmapped. Page numbers are non-negative
   ([page_number] shifts logically), so the -1 empty tag can never
   false-hit. *)
let[@inline] lookup_i t pni =
  let slot = pni land (tlb_size - 1) in
  if Array.unsafe_get t.tlb_tags slot = pni then
    Array.unsafe_get t.tlb_pages slot
  else begin
    let page = Hashtbl.find t.pages (Int64.of_int pni) in
    Array.unsafe_set t.tlb_tags slot pni;
    Array.unsafe_set t.tlb_pages slot page;
    page
  end

let[@inline] lookup t pn = lookup_i t (Int64.to_int pn)

(* Immediate-domain page number / page offset: [Int64.to_int] keeps the
   low 63 bits, which covers both (the shift result is at most 52 bits;
   the offset only needs the low 12). *)
let[@inline] page_number_i addr =
  Int64.to_int (Int64.shift_right_logical addr page_bits)

let[@inline] offset_i addr = Int64.to_int addr land (page_size - 1)

let find t addr =
  match lookup t (page_number addr) with
  | page -> Some page
  | exception Not_found -> None

let is_mapped t addr = Hashtbl.mem t.pages (page_number addr)

(* Page numbers covering [addr, addr+len). *)
let range_pages addr len =
  if len <= 0 then []
  else
    let first = page_number addr in
    let last = page_number (Int64.add addr (Int64.of_int (len - 1))) in
    let rec go n acc = if n < first then acc else go (Int64.sub n 1L) (n :: acc) in
    go last []

let map t ~addr ~len =
  t.generation <- t.generation + 1;
  List.iter
    (fun n ->
      if not (Hashtbl.mem t.pages n) then
        Hashtbl.replace t.pages n
          { data = Bytes.make page_size '\000'; is_code = false; shared = false })
    (range_pages addr len)

let unmap t ~addr ~len =
  t.generation <- t.generation + 1;
  List.iter (Hashtbl.remove t.pages) (range_pages addr len);
  tlb_flush t

let any_mapped t ~addr ~len =
  List.exists (Hashtbl.mem t.pages) (range_pages addr len)

let note_code t ~addr ~len =
  List.iter
    (fun n ->
      match Hashtbl.find_opt t.pages n with
      | Some page -> page.is_code <- true
      | None -> ())
    (range_pages addr len)

(* Copy-on-write: the first write to a page whose bytes are frozen
   swaps in a private copy. Out of line — the hot write paths only pay
   the [shared] load. *)
let unshare t page =
  page.data <- Bytes.copy page.data;
  page.shared <- false;
  t.cow_copies <- t.cow_copies + 1

(* Writes into pages holding decoded instructions invalidate block
   caches; plain data writes leave the generation alone. Every write
   path goes through here before mutating, so this is also the single
   copy-on-write unshare point. *)
let[@inline] dirty t page =
  if page.shared then unshare t page;
  if page.is_code then begin
    t.generation <- t.generation + 1;
    t.code_writes <- t.code_writes + 1
  end

let read_u8 t addr =
  match lookup_i t (page_number_i addr) with
  | page -> Char.code (Bytes.unsafe_get page.data (offset_i addr))
  | exception Not_found -> raise (Fault { addr; access = Read })

let write_u8 t addr v =
  match lookup_i t (page_number_i addr) with
  | page ->
      dirty t page;
      Bytes.set page.data (offset_i addr) (Char.chr (v land 0xff))
  | exception Not_found -> raise (Fault { addr; access = Write })

(* Fast paths for accesses fully inside one page. *)
let read t addr width =
  let off = offset_in_page addr in
  match find t addr with
  | Some page when off + width <= page_size -> (
      let data = page.data in
      match width with
      | 1 -> Int64.of_int (Char.code (Bytes.get data off))
      | 2 -> Int64.of_int (Bytes.get_uint16_le data off)
      | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le data off)) 0xffff_ffffL
      | 8 -> Bytes.get_int64_le data off
      | _ -> invalid_arg "Addr_space.read: width")
  | _ ->
      let rec go i acc =
        if i = width then acc
        else
          let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
          go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
      in
      go 0 0L

let write t addr width v =
  let off = offset_in_page addr in
  match find t addr with
  | Some page when off + width <= page_size -> (
      dirty t page;
      let data = page.data in
      match width with
      | 1 -> Bytes.set_uint8 data off (Int64.to_int (Int64.logand v 0xffL))
      | 2 -> Bytes.set_uint16_le data off (Int64.to_int (Int64.logand v 0xffffL))
      | 4 -> Bytes.set_int32_le data off (Int64.to_int32 v)
      | 8 -> Bytes.set_int64_le data off v
      | _ -> invalid_arg "Addr_space.write: width")
  | _ ->
      for i = 0 to width - 1 do
        let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL) in
        write_u8 t (Int64.add addr (Int64.of_int i)) b
      done

(* Word-granularity fast paths: one TLB probe and one [Bytes] accessor
   when the quadword stays inside a page — the overwhelmingly common
   case for stack and heap traffic. The general [read]/[write] fallback
   preserves exact fault addresses at page crossings. *)
let read_u64 t addr =
  let off = offset_i addr in
  if off <= page_size - 8 then
    match lookup_i t (page_number_i addr) with
    | page -> Bytes.get_int64_le page.data off
    | exception Not_found -> raise (Fault { addr; access = Read })
  else read t addr 8

let write_u64 t addr v =
  let off = offset_i addr in
  if off <= page_size - 8 then
    match lookup_i t (page_number_i addr) with
    | page ->
        dirty t page;
        Bytes.set_int64_le page.data off v
    | exception Not_found -> raise (Fault { addr; access = Write })
  else write t addr 8 v

let read_bytes t addr len =
  let out = Bytes.create len in
  let rec go i =
    if i < len then begin
      let a = Int64.add addr (Int64.of_int i) in
      match find t a with
      | None -> raise (Fault { addr = a; access = Read })
      | Some page ->
          let off = offset_in_page a in
          let n = min (len - i) (page_size - off) in
          Bytes.blit page.data off out i n;
          go (i + n)
    end
  in
  go 0;
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let rec go i =
    if i < len then begin
      let a = Int64.add addr (Int64.of_int i) in
      match find t a with
      | None -> raise (Fault { addr = a; access = Write })
      | Some page ->
          dirty t page;
          let off = offset_in_page a in
          let n = min (len - i) (page_size - off) in
          Bytes.blit src i page.data off n;
          go (i + n)
    end
  in
  go 0

let store t addr src =
  map t ~addr ~len:(Bytes.length src);
  write_bytes t addr src

let read_avail t addr len =
  let rec usable i =
    if i >= len then len
    else
      let a = Int64.add addr (Int64.of_int i) in
      if is_mapped t a then usable (i + (page_size - offset_in_page a)) else i
  in
  let n = min len (usable 0) in
  if n <= 0 then raise (Fault { addr; access = Exec });
  read_bytes t addr n

let pages t =
  let all =
    Hashtbl.fold
      (fun n page acc ->
        (Int64.shift_left n page_bits, Bytes.copy page.data) :: acc)
      t.pages []
  in
  List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) all

let page_count t = Hashtbl.length t.pages

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun n page ->
      Hashtbl.replace pages n
        { data = Bytes.copy page.data; is_code = page.is_code; shared = false })
    t.pages;
  {
    pages;
    generation = t.generation;
    code_writes = t.code_writes;
    cow_copies = 0;
    tlb_tags = Array.make tlb_size (-1);
    tlb_pages = Array.make tlb_size no_page;
  }

let generation t = t.generation
let code_writes t = t.code_writes
let cow_copies t = t.cow_copies

(* --- Copy-on-write snapshots --------------------------------------- *)

(* A frozen view: page numbers plus the byte pointers and code bits as
   of the freeze. The bytes are immutable from the moment they appear
   here — any space still holding them (the frozen parent included)
   copies before its next write — so the view stays exact forever at
   zero byte-copy cost. *)
type frozen = {
  f_pages : (int64 * bytes * bool) array;
  f_generation : int;
  f_code_writes : int;
}

let freeze t =
  let acc = ref [] in
  Hashtbl.iter
    (fun pn page ->
      page.shared <- true;
      acc := (pn, page.data, page.is_code) :: !acc)
    t.pages;
  let f_pages = Array.of_list !acc in
  (* Hashtbl iteration order is not specified; fix it so two freezes of
     equal spaces are structurally equal. *)
  Array.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b) f_pages;
  { f_pages; f_generation = t.generation; f_code_writes = t.code_writes }

(* O(pages) fresh 3-word records pointing at the frozen bytes — no page
   contents are copied; the fork pays per page it later writes. *)
let fork f =
  let pages = Hashtbl.create (max 256 (Array.length f.f_pages)) in
  Array.iter
    (fun (pn, data, is_code) ->
      Hashtbl.replace pages pn { data; is_code; shared = true })
    f.f_pages;
  {
    pages;
    generation = f.f_generation;
    code_writes = f.f_code_writes;
    cow_copies = 0;
    tlb_tags = Array.make tlb_size (-1);
    tlb_pages = Array.make tlb_size no_page;
  }

let frozen_page_count f = Array.length f.f_pages

(* The frozen image as [(page_base, contents)], sorted, WITHOUT copying:
   callers (checkpointing) must treat the bytes as read-only, which the
   freeze contract already guarantees machine-side. *)
let frozen_pages f =
  Array.to_list
    (Array.map (fun (pn, data, _) -> (Int64.shift_left pn page_bits, data)) f.f_pages)
