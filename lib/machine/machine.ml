open Elfie_isa

type fault =
  | Page_fault of { addr : int64; access : Addr_space.access; pc : int64 }
  | Invalid_opcode of int64
  | Privileged of int64

let pp_fault fmt = function
  | Page_fault { addr; access; pc } ->
      let a =
        match access with
        | Addr_space.Read -> "read"
        | Write -> "write"
        | Exec -> "exec"
      in
      Format.fprintf fmt "page fault (%s) at 0x%Lx, pc=0x%Lx" a addr pc
  | Invalid_opcode pc -> Format.fprintf fmt "invalid opcode at pc=0x%Lx" pc
  | Privileged pc -> Format.fprintf fmt "privileged instruction at pc=0x%Lx" pc

type thread_state = Runnable | Exited of int | Faulted of fault

type thread = {
  tid : int;
  ctx : Context.t;
  mutable state : thread_state;
  mutable retired : int64;
  mutable cycles : int64;
  mutable counter_target : int64 option;
  mutable counter_fired : bool;
  mutable arm_retired : int64;
  mutable arm_cycles : int64;
  mutable mark_target : int64 option;
  mutable mark_retired : int64 option;
  mutable mark_cycles : int64;
  mutable timer_left : int;
}

type scheduler =
  | Free of { seed : int64; quantum_min : int; quantum_max : int }
  | Recorded of (int * int) list

type hooks = {
  mutable on_ins : (int -> int64 -> Insn.t -> unit) option;
  mutable on_mem_read : (int -> int64 -> int -> unit) option;
  mutable on_mem_write : (int -> int64 -> int -> unit) option;
  mutable on_branch : (int -> int64 -> int64 -> bool -> unit) option;
  mutable on_marker : (int -> Insn.t -> unit) option;
  mutable on_thread_start : (int -> unit) option;
  mutable on_thread_exit : (int -> int -> unit) option;
}

type syscall_action = Run_syscall | Skip_syscall

type sched_state =
  | S_free of {
      rng : Elfie_util.Rng.t;
      quantum_min : int;
      quantum_max : int;
      (* A quantum interrupted by a [run ~max_ins] boundary resumes on
         the next call, so segmented driving (the multi-region logger)
         produces exactly the interleaving of one continuous run. *)
      mutable pending : (int * int) option;
    }
  | S_recorded of (int * int) list ref

(* A translated basic block: a straight-line run of decoded instructions
   ending at the first branch/call/syscall/marker (or the translation
   window). Executing one replays the per-instruction interpreter
   exactly, but pays fetch, decode, static cost classification and
   micro-op specialisation once per block instead of once per
   instruction. [bb_uops] holds each instruction compiled to a closure
   with operands pre-resolved (register indices, addressing mode); it is
   only entered on the hook-free batch path. *)
type bb = {
  bb_pc : int64 array;  (* pc of each instruction *)
  bb_ins : Insn.t array;
  bb_next : int64 array;  (* pc just past each instruction *)
  bb_cost : int array;  (* static per-class cost (Timing.ins_cost) *)
  bb_prefix : int array;  (* length n+1; prefix.(i) = sum of bb_cost.(<i) *)
  bb_uops : (t -> thread -> unit) array;
  bb_ends_block : bool;  (* last instruction is a branch/call/syscall *)
  (* The terminator is a plain branch/call/ret (no syscall, marker or
     trap), so a hook-free batch may run the whole block including it. *)
  bb_tail_batchable : bool;
}

and t = {
  mem : Addr_space.t;
  mutable thread_list : thread list;  (* reversed *)
  mutable thread_arr : thread array;
  hooks : hooks;
  timing : Timing.t;
  sched : sched_state;
  mutable syscall_handler : t -> int -> unit;
  mutable syscall_filter : (t -> int -> syscall_action) option;
  mutable stop_requested : bool;
  mutable ring0 : int64;
  mutable retired_total : int64;
  mutable record_schedule : bool;
  mutable schedule_rev : (int * int) list;
  mutable schedule_cut : bool;
  block_cache : (int64, bb) Hashtbl.t;
  mutable decode_generation : int;
  mutable timer : (int * int * Elfie_util.Rng.t) option;
  mutable group_exit_status : int option;
  (* Cycle cost accumulator for the instruction currently in [execute];
     a field rather than a per-call ref so the interpreter allocates
     nothing per instruction. Not reentrant — syscall handlers run
     inside [execute] but never recurse into it. *)
  mutable exec_cost : int;
  (* Dynamic (cache, branch, pause) cycle cost accumulated by micro-ops
     across one hook-free batch; static class costs come from
     [bb_prefix]. Zeroed at batch start and flushed into the thread's
     cycle count at batch end. *)
  mutable dyn_cost : int;
  (* Direct-mapped front memo for the block cache: hot loops (whose
     bodies typically span a handful of blocks) fetch translations with
     an unboxed int64 compare instead of an int64-keyed hash probe.
     [block_memo_pc.(slot) = -1L] marks an empty slot. *)
  block_memo_pc : int64 array;
  block_memo : bb array;
  mutable block_observer :
    (tid:int -> pcs:int64 array -> n:int -> ends_block:bool -> unit) option;
}

let block_memo_size = 64 (* power of two *)

(* Placeholder behind [block_memo_pc.(slot) = -1L], never matching a pc. *)
let dummy_bb =
  {
    bb_pc = [||];
    bb_ins = [||];
    bb_next = [||];
    bb_cost = [||];
    bb_prefix = [| 0 |];
    bb_uops = [||];
    bb_ends_block = false;
    bb_tail_batchable = false;
  }

let fresh_hooks () =
  {
    on_ins = None;
    on_mem_read = None;
    on_mem_write = None;
    on_branch = None;
    on_marker = None;
    on_thread_start = None;
    on_thread_exit = None;
  }

let create ?(timing = Timing.default) scheduler =
  let sched =
    match scheduler with
    | Free { seed; quantum_min; quantum_max } ->
        S_free
          { rng = Elfie_util.Rng.create seed; quantum_min; quantum_max;
            pending = None }
    | Recorded slices -> S_recorded (ref slices)
  in
  {
    mem = Addr_space.create ();
    thread_list = [];
    thread_arr = [||];
    hooks = fresh_hooks ();
    timing = Timing.create timing;
    sched;
    syscall_handler = (fun _ _ -> failwith "Machine: no syscall handler installed");
    syscall_filter = None;
    stop_requested = false;
    ring0 = 0L;
    retired_total = 0L;
    record_schedule = false;
    schedule_rev = [];
    schedule_cut = false;
    block_cache = Hashtbl.create 1024;
    decode_generation = -1;
    timer = None;
    group_exit_status = None;
    exec_cost = 0;
    dyn_cost = 0;
    block_memo_pc = Array.make block_memo_size (-1L);
    block_memo = Array.make block_memo_size dummy_bb;
    block_observer = None;
  }

let mem t = t.mem
let hooks t = t.hooks
let timing t = t.timing
let set_syscall_handler t h = t.syscall_handler <- h
let set_syscall_filter t f = t.syscall_filter <- Some f

let add_thread t ctx =
  let tid = Array.length t.thread_arr in
  let th =
    {
      tid;
      ctx;
      state = Runnable;
      retired = 0L;
      cycles = 0L;
      counter_target = None;
      counter_fired = false;
      arm_retired = 0L;
      arm_cycles = 0L;
      mark_target = None;
      mark_retired = None;
      mark_cycles = 0L;
      timer_left = max_int;
    }
  in
  t.thread_list <- th :: t.thread_list;
  t.thread_arr <- Array.of_list (List.rev t.thread_list);
  (match t.timer with
  | Some (interval, _, rng) ->
      th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
  | None -> ());
  (match t.hooks.on_thread_start with Some f -> f tid | None -> ());
  tid

let thread t tid =
  if tid < 0 || tid >= Array.length t.thread_arr then
    invalid_arg (Printf.sprintf "Machine.thread: bad tid %d" tid);
  t.thread_arr.(tid)

let threads t = Array.to_list t.thread_arr

let live_thread_count t =
  Array.fold_left
    (fun n th -> match th.state with Runnable -> n + 1 | _ -> n)
    0 t.thread_arr

let exit_thread t tid ~status =
  let th = thread t tid in
  if th.state = Runnable then begin
    th.state <- Exited status;
    match t.hooks.on_thread_exit with Some f -> f tid status | None -> ()
  end

let exit_all t ~status =
  t.group_exit_status <- Some status;
  Array.iter (fun th -> if th.state = Runnable then exit_thread t th.tid ~status)
    t.thread_arr

let group_exit_status t = t.group_exit_status

let arm_counter t tid ~target =
  let th = thread t tid in
  th.counter_target <- Some target;
  th.arm_retired <- th.retired;
  th.arm_cycles <- th.cycles

let arm_mark t tid ~target =
  let th = thread t tid in
  th.mark_target <- Some target

let set_timer t ~interval ~cycles ~seed =
  let rng = Elfie_util.Rng.create seed in
  t.timer <- Some (interval, cycles, rng);
  Array.iter
    (fun th -> th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval)
    t.thread_arr

let request_stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested

let charge_ring0 t tid ~instructions ~cycles =
  let th = thread t tid in
  th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
  t.ring0 <- Int64.add t.ring0 (Int64.of_int instructions)

let ring0_retired t = t.ring0
let set_record_schedule t b = t.record_schedule <- b

let recorded_schedule t = List.rev t.schedule_rev
let cut_schedule t = t.schedule_cut <- true

let total_retired t = t.retired_total

let elapsed_cycles t =
  Array.fold_left (fun acc th -> max acc th.cycles) 0L t.thread_arr

let all_exited_cleanly t =
  Array.for_all (fun th -> th.state = Exited 0) t.thread_arr

(* --- Fetch with basic-block translation cache -------------------------- *)

let set_block_observer t f = t.block_observer <- f
let translated_blocks t = Hashtbl.length t.block_cache

(* --- Instruction semantics --------------------------------------------- *)

let effective_address ctx (m : Insn.mem) =
  let base = match m.base with Some r -> Context.get ctx r | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul (Context.get ctx r) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let truncate_width width v =
  match width with
  | Insn.W8 -> Int64.logand v 0xffL
  | W16 -> Int64.logand v 0xffffL
  | W32 -> Int64.logand v 0xffff_ffffL
  | W64 -> v

let set_zf_sf (flags : Reg.flags) r =
  flags.zf <- r = 0L;
  flags.sf <- r < 0L

(* ALU flag semantics, one function per operation so the micro-op
   compiler can resolve the operation once per block. The result is
   always returned; [alu_writes] says whether it lands in a register. *)
let alu_add (flags : Reg.flags) a b =
  let r = Int64.add a b in
  flags.cf <- Int64.unsigned_compare r a < 0;
  flags.ovf <- (a >= 0L && b >= 0L && r < 0L) || (a < 0L && b < 0L && r >= 0L);
  set_zf_sf flags r;
  r

let alu_sub (flags : Reg.flags) a b =
  let r = Int64.sub a b in
  flags.cf <- Int64.unsigned_compare a b < 0;
  flags.ovf <- (a >= 0L && b < 0L && r < 0L) || (a < 0L && b >= 0L && r >= 0L);
  set_zf_sf flags r;
  r

let alu_and (flags : Reg.flags) a b =
  let r = Int64.logand a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_or (flags : Reg.flags) a b =
  let r = Int64.logor a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_xor (flags : Reg.flags) a b =
  let r = Int64.logxor a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_imul (flags : Reg.flags) a b =
  let r = Int64.mul a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_fn = function
  | Insn.Add -> alu_add
  | Sub | Cmp -> alu_sub
  | And | Test -> alu_and
  | Or -> alu_or
  | Xor -> alu_xor
  | Imul -> alu_imul

let alu_writes = function Insn.Cmp | Insn.Test -> false | _ -> true

let exec_shift (flags : Reg.flags) op v n =
  if n = 0 then v
  else begin
    let r =
      match op with
      | Insn.Shl -> Int64.shift_left v n
      | Shr -> Int64.shift_right_logical v n
      | Sar -> Int64.shift_right v n
    in
    let last_out =
      match op with
      | Insn.Shl -> Int64.logand (Int64.shift_right_logical v (64 - n)) 1L
      | Shr | Sar -> Int64.logand (Int64.shift_right_logical v (n - 1)) 1L
    in
    flags.cf <- last_out = 1L;
    flags.ovf <- false;
    set_zf_sf flags r;
    r
  end

let eval_cond (flags : Reg.flags) = function
  | Insn.Eq -> flags.zf
  | Ne -> not flags.zf
  | Lt -> flags.sf <> flags.ovf
  | Ge -> flags.sf = flags.ovf
  | Le -> flags.zf || flags.sf <> flags.ovf
  | Gt -> (not flags.zf) && flags.sf = flags.ovf
  | Ult -> flags.cf
  | Uge -> not flags.cf

let float_lane_op op a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with Insn.Vadd -> fa +. fb | Vmul -> fa *. fb | Vsub -> fa -. fb
  in
  Int64.bits_of_float r

(* Memory helpers for [execute]: the hook dispatch, the stateful cache
   cost and the access itself, with quadword variants hitting the
   [Addr_space] fast paths. Top-level functions accumulating into
   [t.exec_cost] so the interpreter allocates no closures. *)
let[@inline] mem_read t tid addr width =
  (match t.hooks.on_mem_read with Some f -> f tid addr width | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.read t.mem addr width

let[@inline] mem_read64 t tid addr =
  (match t.hooks.on_mem_read with Some f -> f tid addr 8 | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.read_u64 t.mem addr

let[@inline] mem_write t tid addr width v =
  (match t.hooks.on_mem_write with Some f -> f tid addr width | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.write t.mem addr width v

let[@inline] mem_write64 t tid addr v =
  (match t.hooks.on_mem_write with Some f -> f tid addr 8 | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.write_u64 t.mem addr v

let[@inline] push t tid ctx v =
  let sp = Int64.sub (Context.get ctx RSP) 8L in
  Context.set ctx RSP sp;
  mem_write64 t tid sp v

let[@inline] pop t tid ctx =
  let sp = Context.get ctx RSP in
  let v = mem_read64 t tid sp in
  Context.set ctx RSP (Int64.add sp 8L);
  v

let[@inline] branch_to t tid ctx pc target taken =
  t.exec_cost <- t.exec_cost + Timing.branch_cost t.timing ~pc ~taken;
  (match t.hooks.on_branch with Some f -> f tid pc target taken | None -> ());
  if taken then ctx.Context.rip <- target

(* Execute [ins] for thread [th]; RIP already points past it.
   [base_cost] is the instruction's static class cost, precomputed at
   translation time. *)
let execute t th pc ins base_cost =
  let ctx = th.ctx in
  let flags = ctx.Context.flags in
  let tid = th.tid in
  t.exec_cost <- base_cost;
  (match ins with
  | Insn.Mov_ri (r, v) -> Context.set ctx r v
  | Mov_rr (d, s) -> Context.set ctx d (Context.get ctx s)
  | Load (w, r, m) ->
      let addr = effective_address ctx m in
      let v =
        match w with
        | Insn.W64 -> mem_read64 t tid addr
        | w -> mem_read t tid addr (Insn.width_bytes w)
      in
      Context.set ctx r v
  | Store (w, m, r) ->
      let v = truncate_width w (Context.get ctx r) in
      let addr = effective_address ctx m in
      (match w with
      | Insn.W64 -> mem_write64 t tid addr v
      | w -> mem_write t tid addr (Insn.width_bytes w) v)
  | Lea (r, m) -> Context.set ctx r (effective_address ctx m)
  | Alu_rr (op, d, s) ->
      let r = (alu_fn op) flags (Context.get ctx d) (Context.get ctx s) in
      if alu_writes op then Context.set ctx d r
  | Alu_ri (op, d, imm) ->
      let r = (alu_fn op) flags (Context.get ctx d) imm in
      if alu_writes op then Context.set ctx d r
  | Shift_ri (op, d, n) -> Context.set ctx d (exec_shift flags op (Context.get ctx d) n)
  | Neg d -> Context.set ctx d (alu_sub flags 0L (Context.get ctx d))
  | Push r -> push t tid ctx (Context.get ctx r)
  | Pop r -> Context.set ctx r (pop t tid ctx)
  | Jmp rel ->
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Jcc (c, rel) ->
      let taken = eval_cond flags c in
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) taken
  | Jmp_r r -> branch_to t tid ctx pc (Context.get ctx r) true
  | Jmp_m m ->
      let target = mem_read64 t tid (effective_address ctx m) in
      branch_to t tid ctx pc target true
  | Call rel ->
      push t tid ctx ctx.Context.rip;
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Call_r r ->
      push t tid ctx ctx.Context.rip;
      branch_to t tid ctx pc (Context.get ctx r) true
  | Ret -> branch_to t tid ctx pc (pop t tid ctx) true
  | Syscall ->
      let action =
        match t.syscall_filter with
        | Some f -> f t tid
        | None -> Run_syscall
      in
      (match action with
      | Run_syscall -> t.syscall_handler t tid
      | Skip_syscall -> ())
  | Cpuid ->
      (* Vendor string "VX86" in RBX; leaves a recognisable marker. *)
      (match t.hooks.on_marker with Some f -> f tid ins | None -> ());
      Context.set ctx RAX 1L;
      Context.set ctx RBX 0x36385856L;
      Context.set ctx RCX 0L;
      Context.set ctx RDX 0L
  | Nop -> ()
  | Ssc_marker _ | Magic _ -> (
      match t.hooks.on_marker with Some f -> f tid ins | None -> ())
  | Pause -> t.exec_cost <- t.exec_cost + 10
  | Xchg (r, m) ->
      let addr = effective_address ctx m in
      let old = mem_read64 t tid addr in
      mem_write64 t tid addr (Context.get ctx r);
      Context.set ctx r old
  | Cmpxchg (m, r) ->
      let addr = effective_address ctx m in
      let old = mem_read64 t tid addr in
      if old = Context.get ctx RAX then begin
        mem_write64 t tid addr (Context.get ctx r);
        flags.zf <- true
      end
      else begin
        Context.set ctx RAX old;
        flags.zf <- false
      end
  | Ldctx r ->
      let img = Addr_space.read_bytes t.mem (Context.get ctx r) Context.xsave_size in
      Context.xrstor ctx img
  | Stctx r -> Addr_space.write_bytes t.mem (Context.get ctx r) (Context.xsave ctx)
  | Wrfsbase r -> ctx.Context.fs_base <- Context.get ctx r
  | Wrgsbase r -> ctx.Context.gs_base <- Context.get ctx r
  | Rdfsbase r -> Context.set ctx r ctx.Context.fs_base
  | Rdgsbase r -> Context.set ctx r ctx.Context.gs_base
  | Popf ->
      let fl = Reg.flags_of_word (pop t tid ctx) in
      flags.zf <- fl.zf;
      flags.sf <- fl.sf;
      flags.cf <- fl.cf;
      flags.ovf <- fl.ovf
  | Pushf -> push t tid ctx (Reg.flags_to_word flags)
  | Vload (x, m) ->
      let addr = effective_address ctx m in
      Context.set_xmm_lane ctx x 0 (mem_read64 t tid addr);
      Context.set_xmm_lane ctx x 1 (mem_read64 t tid (Int64.add addr 8L))
  | Vstore (m, x) ->
      let addr = effective_address ctx m in
      mem_write64 t tid addr (Context.xmm_lane ctx x 0);
      mem_write64 t tid (Int64.add addr 8L) (Context.xmm_lane ctx x 1)
  | Vop_rr (op, d, s) ->
      Context.set_xmm_lane ctx d 0
        (float_lane_op op (Context.xmm_lane ctx d 0) (Context.xmm_lane ctx s 0));
      Context.set_xmm_lane ctx d 1
        (float_lane_op op (Context.xmm_lane ctx d 1) (Context.xmm_lane ctx s 1))
  | Hlt -> raise (Addr_space.Fault { addr = pc; access = Exec })
  | Ud2 -> raise (Addr_space.Fault { addr = pc; access = Exec }));
  th.cycles <- Int64.add th.cycles (Int64.of_int t.exec_cost)

(* --- Micro-op compilation ---------------------------------------------- *)

(* Addressing mode resolved at translation time: base/index register
   indices and the scale multiply are baked into the closure. Matches
   [effective_address] exactly (scale only applies to the index). *)
let compile_addr (m : Insn.mem) : int64 array -> int64 =
  let disp = m.disp in
  match (m.base, m.index) with
  | None, None -> fun _ -> disp
  | Some b, None ->
      let bi = Reg.gpr_index b in
      fun g -> Int64.add (Array.unsafe_get g bi) disp
  | None, Some x ->
      let xi = Reg.gpr_index x in
      if m.scale = 1 then fun g -> Int64.add (Array.unsafe_get g xi) disp
      else
        let s = Int64.of_int m.scale in
        fun g -> Int64.add (Int64.mul (Array.unsafe_get g xi) s) disp
  | Some b, Some x ->
      let bi = Reg.gpr_index b and xi = Reg.gpr_index x in
      if m.scale = 1 then
        fun g ->
          Int64.add
            (Int64.add (Array.unsafe_get g bi) (Array.unsafe_get g xi))
            disp
      else
        let s = Int64.of_int m.scale in
        fun g ->
          Int64.add
            (Int64.add (Array.unsafe_get g bi)
               (Int64.mul (Array.unsafe_get g xi) s))
            disp

let rsp_index = Reg.gpr_index Reg.RSP

let cond_fn = function
  | Insn.Eq -> fun (f : Reg.flags) -> f.zf
  | Ne -> fun (f : Reg.flags) -> not f.zf
  | Lt -> fun (f : Reg.flags) -> f.sf <> f.ovf
  | Ge -> fun (f : Reg.flags) -> f.sf = f.ovf
  | Le -> fun (f : Reg.flags) -> f.zf || f.sf <> f.ovf
  | Gt -> fun (f : Reg.flags) -> (not f.zf) && f.sf = f.ovf
  | Ult -> fun (f : Reg.flags) -> f.cf
  | Uge -> fun (f : Reg.flags) -> not f.cf

(* Compile one instruction to its hook-free batch form. Contract: the
   closure performs exactly what [execute] does when every hook is
   absent, except that (a) static class cost is accounted by the caller
   through [bb_prefix] and (b) dynamic cost (cache misses, branch
   prediction, [Pause]) is accumulated into [t.dyn_cost]. Cache and
   predictor state are touched in the same order as [execute], and a
   faulting micro-op leaves the faulting access's cost out of
   [dyn_cost], mirroring [execute] discarding [exec_cost] when the
   fault unwinds it.

   [pc] is the instruction's address and [next] the address just past
   it — both block-translation constants, so a branch's relative target
   is resolved here, at compile time ([execute] sees RIP already
   advanced to [next], hence target = next + rel). Branches only ever
   terminate a block; they are compiled so a hook-free batch can retire
   the terminator too. Syscalls, markers and traps always run through
   [execute].

   Unlike [execute], a micro-op does NOT expect RIP to be advanced
   beforehand — the caller skips that per-instruction store, and the
   batch loop repairs RIP once on exit. The forms that observe RIP bake
   in the [next] constant instead: every branch sets RIP
   unconditionally (a non-taken [Jcc] writes [next]), calls push
   [next], and the [execute] fallback advances RIP itself. *)
let compile_ins ~pc ~next (ins : Insn.t) : t -> thread -> unit =
  match ins with
  | Insn.Jmp rel ->
      let target = Int64.add next (Int64.of_int rel) in
      fun t th ->
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        th.ctx.Context.rip <- target
  | Jcc (c, rel) ->
      let cond = cond_fn c in
      let target = Int64.add next (Int64.of_int rel) in
      fun t th ->
        let ctx = th.ctx in
        let taken = cond ctx.Context.flags in
        t.dyn_cost <- t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken;
        ctx.Context.rip <- (if taken then target else next)
  | Jmp_r r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let ctx = th.ctx in
        let target = Array.unsafe_get ctx.Context.gprs ri in
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Jmp_m m ->
      let a = compile_addr m in
      fun t th ->
        let ctx = th.ctx in
        let addr = a ctx.Context.gprs in
        let c = Timing.mem_cost t.timing addr in
        let target = Addr_space.read_u64 t.mem addr in
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Call rel ->
      let target = Int64.add next (Int64.of_int rel) in
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Int64.sub (Array.unsafe_get g rsp_index) 8L in
        Array.unsafe_set g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp next;
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Call_r r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Int64.sub (Array.unsafe_get g rsp_index) 8L in
        Array.unsafe_set g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp next;
        (* Target read after the push, as [execute] does (a call through
           RSP sees the decremented stack pointer). *)
        let target = Array.unsafe_get g ri in
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Ret ->
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Array.unsafe_get g rsp_index in
        let c = Timing.mem_cost t.timing sp in
        let target = Addr_space.read_u64 t.mem sp in
        t.dyn_cost <- t.dyn_cost + c;
        Array.unsafe_set g rsp_index (Int64.add sp 8L);
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Insn.Mov_ri (r, v) ->
      let ri = Reg.gpr_index r in
      fun _t th -> Array.unsafe_set th.ctx.Context.gprs ri v
  | Mov_rr (d, s) ->
      let di = Reg.gpr_index d and si = Reg.gpr_index s in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Array.unsafe_set g di (Array.unsafe_get g si)
  | Load (Insn.W64, r, m) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        let v = Addr_space.read_u64 t.mem addr in
        t.dyn_cost <- t.dyn_cost + c;
        Array.unsafe_set g ri v
  | Load (w, r, m) ->
      let a = compile_addr m
      and ri = Reg.gpr_index r
      and wb = Insn.width_bytes w in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        let v = Addr_space.read t.mem addr wb in
        t.dyn_cost <- t.dyn_cost + c;
        Array.unsafe_set g ri v
  | Store (Insn.W64, m, r) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = Array.unsafe_get g ri in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        Addr_space.write_u64 t.mem addr v;
        t.dyn_cost <- t.dyn_cost + c
  | Store (w, m, r) ->
      let a = compile_addr m
      and ri = Reg.gpr_index r
      and wb = Insn.width_bytes w in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = truncate_width w (Array.unsafe_get g ri) in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        Addr_space.write t.mem addr wb v;
        t.dyn_cost <- t.dyn_cost + c
  | Lea (r, m) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Array.unsafe_set g ri (a g)
  | Alu_rr (op, d, s) ->
      let f = alu_fn op and di = Reg.gpr_index d and si = Reg.gpr_index s in
      if alu_writes op then fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Array.unsafe_set g di
          (f ctx.Context.flags (Array.unsafe_get g di) (Array.unsafe_get g si))
      else fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        ignore
          (f ctx.Context.flags (Array.unsafe_get g di) (Array.unsafe_get g si))
  | Alu_ri (op, d, imm) ->
      let f = alu_fn op and di = Reg.gpr_index d in
      if alu_writes op then fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Array.unsafe_set g di (f ctx.Context.flags (Array.unsafe_get g di) imm)
      else fun _t th ->
        let ctx = th.ctx in
        ignore
          (f ctx.Context.flags
             (Array.unsafe_get ctx.Context.gprs di)
             imm)
  | Shift_ri (op, d, n) ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Array.unsafe_set g di
          (exec_shift ctx.Context.flags op (Array.unsafe_get g di) n)
  | Neg d ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Array.unsafe_set g di
          (alu_sub ctx.Context.flags 0L (Array.unsafe_get g di))
  | Push r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = Array.unsafe_get g ri in
        let sp = Int64.sub (Array.unsafe_get g rsp_index) 8L in
        Array.unsafe_set g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp v;
        t.dyn_cost <- t.dyn_cost + c
  | Pop r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let sp = Array.unsafe_get g rsp_index in
        let c = Timing.mem_cost t.timing sp in
        let v = Addr_space.read_u64 t.mem sp in
        t.dyn_cost <- t.dyn_cost + c;
        Array.unsafe_set g rsp_index (Int64.add sp 8L);
        Array.unsafe_set g ri v
  | Nop -> fun _t _th -> ()
  | Pause -> fun t _th -> t.dyn_cost <- t.dyn_cost + 10
  | ins ->
      fun t th ->
        th.ctx.Context.rip <- next;
        execute t th pc ins 0

(* --- Block translation -------------------------------------------------- *)

let max_ins_bytes = 16
let block_window = 512  (* bytes of code decoded per translation *)
let max_block_ins = 64

(* Markers terminate translation too: they are rare, and ending blocks
   at them keeps marker-driven observers on block boundaries. *)
let terminates_block ins =
  match Insn.classify ins with
  | Insn.K_branch | K_call | K_syscall -> true
  | K_alu | K_load | K_store | K_vector -> false
  | K_other -> (
      match ins with
      | Insn.Cpuid | Ssc_marker _ | Magic _ | Hlt | Ud2 -> true
      | _ -> false)

let build_block t pc =
  let buf = Addr_space.read_avail t.mem pc block_window in
  let len = Bytes.length buf in
  let full = len >= block_window in
  let r = Elfie_util.Byteio.Reader.of_bytes buf in
  let acc = ref [] in
  let count = ref 0 in
  let stop = ref false in
  while not !stop do
    let off = Elfie_util.Byteio.Reader.pos r in
    (* When the window filled, stop before an instruction that could be
       cut short by it (encodings are at most [max_ins_bytes]); it will
       head the next block, decoded from a fresh window. *)
    if !count >= max_block_ins || (full && off > block_window - max_ins_bytes)
    then stop := true
    else
      match Codec.decode r with
      | ins ->
          acc := (off, ins, Elfie_util.Byteio.Reader.pos r) :: !acc;
          incr count;
          if terminates_block ins then stop := true
      | exception Codec.Invalid _ ->
          if !count = 0 then
            raise (Addr_space.Fault { addr = pc; access = Exec });
          stop := true
      | exception Elfie_util.Byteio.Truncated _ ->
          (* The first instruction runs off the end of mapped memory:
             the truncation point is the first unmapped byte, the same
             fault address a 16-byte fetch window would report. A later
             instruction merely ends the block here; re-fetching at its
             pc reports the precise fault. *)
          if !count = 0 then
            raise
              (Addr_space.Fault
                 { addr = Int64.add pc (Int64.of_int len); access = Exec });
          stop := true
  done;
  let items = Array.of_list (List.rev !acc) in
  let n = Array.length items in
  let _, ins0, _ = items.(0) in
  let bb_pc = Array.make n 0L in
  let bb_ins = Array.make n ins0 in
  let bb_next = Array.make n 0L in
  let bb_cost = Array.make n 0 in
  Array.iteri
    (fun i (off, ins, end_off) ->
      bb_pc.(i) <- Int64.add pc (Int64.of_int off);
      bb_ins.(i) <- ins;
      bb_next.(i) <- Int64.add pc (Int64.of_int end_off);
      bb_cost.(i) <- Timing.ins_cost t.timing (Insn.classify ins))
    items;
  let bb_prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    bb_prefix.(i + 1) <- bb_prefix.(i) + bb_cost.(i)
  done;
  let bb_uops =
    Array.init n (fun i ->
        compile_ins ~pc:bb_pc.(i) ~next:bb_next.(i) bb_ins.(i))
  in
  let bb_ends_block =
    match Insn.classify bb_ins.(n - 1) with
    | Insn.K_branch | K_call | K_syscall -> true
    | K_alu | K_load | K_store | K_vector | K_other -> false
  in
  let bb_tail_batchable =
    match bb_ins.(n - 1) with
    | Insn.Jmp _ | Jcc _ | Jmp_r _ | Jmp_m _ | Call _ | Call_r _ | Ret -> true
    | _ -> false
  in
  let _, _, span = items.(n - 1) in
  (* Writes into the decoded span must invalidate this translation. *)
  Addr_space.note_code t.mem ~addr:pc ~len:span;
  {
    bb_pc;
    bb_ins;
    bb_next;
    bb_cost;
    bb_prefix;
    bb_uops;
    bb_ends_block;
    bb_tail_batchable;
  }

let fetch_block t pc =
  let gen = Addr_space.generation t.mem in
  if gen <> t.decode_generation then begin
    Hashtbl.reset t.block_cache;
    t.decode_generation <- gen;
    Array.fill t.block_memo_pc 0 block_memo_size (-1L)
  end;
  let slot = Int64.to_int pc land (block_memo_size - 1) in
  if Int64.equal (Array.unsafe_get t.block_memo_pc slot) pc then
    Array.unsafe_get t.block_memo slot
  else begin
    let b =
      match Hashtbl.find_opt t.block_cache pc with
      | Some b -> b
      | None ->
          let b = build_block t pc in
          Hashtbl.replace t.block_cache pc b;
          b
    in
    t.block_memo_pc.(slot) <- pc;
    t.block_memo.(slot) <- b;
    b
  end

(* Retirement epilogue shared by every executed instruction: perf
   counter, timer interrupt, warmup mark, armed-counter graceful exit —
   in the historical per-step order. *)
let retire t th =
  th.retired <- Int64.add th.retired 1L;
  t.retired_total <- Int64.add t.retired_total 1L;
  (match t.timer with
  | Some (interval, cycles, rng) ->
      th.timer_left <- th.timer_left - 1;
      if th.timer_left <= 0 then begin
        th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
        t.ring0 <- Int64.add t.ring0 (Int64.of_int cycles);
        th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
      end
  | None -> ());
  (match th.mark_target with
  | Some target when th.retired >= target ->
      th.mark_target <- None;
      th.mark_retired <- Some th.retired;
      th.mark_cycles <- th.cycles
  | Some _ | None -> ());
  match th.counter_target with
  | Some target when th.retired >= target ->
      (* The counter reaches its count even when this very instruction
         made the thread exit (e.g. a region ending in exit_group). *)
      th.counter_fired <- true;
      (match th.state with
      | Runnable -> exit_thread t th.tid ~status:0
      | Exited _ | Faulted _ -> ())
  | Some _ | None -> ()

let record_fault th pc ins addr access =
  (* Ud2/Hlt reuse the fault exception with access=Exec, addr=pc. *)
  match ins with
  | Insn.Ud2 -> th.state <- Faulted (Invalid_opcode pc)
  | Hlt -> th.state <- Faulted (Privileged pc)
  | _ -> th.state <- Faulted (Page_fault { addr; access; pc })

(* Execute up to [limit] instructions of [th]'s current translated
   block; returns how many were attempted (a faulting fetch or
   instruction counts as one, matching the per-step accounting).

   Hooks can only appear or vanish mid-run from a syscall handler, and
   syscalls terminate translation, so hook presence is loop-invariant
   within a block: uninstrumented runs take the dispatch-free fast loop.
   The block observer (count-driven profiler) is notified once per block
   with the attempted prefix — equivalent to per-instruction feeding. *)
let exec_block t th limit =
  let pc0 = th.ctx.Context.rip in
  match fetch_block t pc0 with
  | exception Addr_space.Fault { addr; access = _ } ->
      th.state <- Faulted (Page_fault { addr; access = Exec; pc = pc0 });
      1
  | bb ->
      let len = Array.length bb.bb_ins in
      let n = if limit < len then limit else len in
      let gen = t.decode_generation in
      let attempted = ref 0 in
      let continue_ = ref true in
      (* Hook-free batch: run the block through the pre-compiled
         micro-ops with no per-instruction hook dispatch or retirement
         bookkeeping. The interior is straight-line code, so only
         memory/instruction hooks could observe it; a plain branch
         terminator is additionally invisible to all but [on_branch], so
         when that hook is also absent the batch may retire the
         terminator too. The fuel cap keeps every retirement event
         (timer tick, warmup mark, armed counter) strictly outside the
         batch, making the deferred bulk update of retired/cycles/timer
         bit-identical to per-instruction retirement. *)
      let batchable =
        (match t.hooks.on_ins with Some _ -> false | None -> true)
        && (match t.hooks.on_mem_read with Some _ -> false | None -> true)
        && (match t.hooks.on_mem_write with Some _ -> false | None -> true)
      in
      if batchable then begin
        let tail_ok =
          bb.bb_tail_batchable
          && match t.hooks.on_branch with Some _ -> false | None -> true
        in
        let fuel =
          ref
            (let m = if tail_ok then len else len - 1 in
             if n < m then n else m)
        in
        (match t.timer with
        | Some _ -> if th.timer_left - 1 < !fuel then fuel := th.timer_left - 1
        | None -> ());
        (* Events fire when [retired] reaches the target: the batch must
           stop one instruction short of it. *)
        let cap target =
          let room = Int64.sub target th.retired in
          if Int64.compare room (Int64.of_int !fuel) <= 0 then
            fuel := (if Int64.compare room 1L < 0 then 0 else Int64.to_int room - 1)
        in
        (match th.mark_target with Some tg -> cap tg | None -> ());
        (match th.counter_target with Some tg -> cap tg | None -> ());
        let fuel = !fuel in
        if fuel > 0 then begin
          t.dyn_cost <- 0;
          let i = ref 0 in
          let faulted = ref false in
          let brk = ref false in
          while (not !brk) && !i < fuel do
            let idx = !i in
            match (Array.unsafe_get bb.bb_uops idx) t th with
            | () ->
                incr i;
                if gen <> Addr_space.generation t.mem then brk := true
            | exception Addr_space.Fault { addr; access } ->
                (* The per-step path advances RIP before executing; a
                   fault leaves it past the faulting instruction. *)
                th.ctx.Context.rip <- Array.unsafe_get bb.bb_next idx;
                record_fault th
                  (Array.unsafe_get bb.bb_pc idx)
                  (Array.unsafe_get bb.bb_ins idx)
                  addr access;
                faulted := true;
                brk := true
          done;
          let ok = !i in
          (* Micro-ops skip the per-instruction RIP store; only a
             terminating branch (always the block's last micro-op) and
             the fault path above write RIP themselves. Repair it here
             for every other exit so the machine state matches per-step
             execution exactly. *)
          if ok > 0 && ok < len && not !faulted then
            th.ctx.Context.rip <- Array.unsafe_get bb.bb_next (ok - 1);
          th.retired <- Int64.add th.retired (Int64.of_int ok);
          t.retired_total <- Int64.add t.retired_total (Int64.of_int ok);
          (match t.timer with
          | Some _ -> th.timer_left <- th.timer_left - ok
          | None -> ());
          th.cycles <-
            Int64.add th.cycles
              (Int64.of_int (Array.unsafe_get bb.bb_prefix ok + t.dyn_cost));
          t.dyn_cost <- 0;
          attempted := (if !faulted then ok + 1 else ok);
          if !faulted || t.stop_requested || gen <> Addr_space.generation t.mem
          then continue_ := false
        end
      end;
      (* Per-instruction path: the block terminator, instrumented runs,
         retirement-event boundaries, and the remainder after a mid-block
         invalidation. *)
      let hook_free =
        match t.hooks.on_ins with Some _ -> false | None -> true
      in
      while !continue_ && !attempted < n do
        let idx = !attempted in
        let pc = Array.unsafe_get bb.bb_pc idx in
        let ins = Array.unsafe_get bb.bb_ins idx in
        if not hook_free then
          (match t.hooks.on_ins with Some f -> f th.tid pc ins | None -> ());
        th.ctx.Context.rip <- Array.unsafe_get bb.bb_next idx;
        incr attempted;
        (match execute t th pc ins (Array.unsafe_get bb.bb_cost idx) with
        | () -> retire t th
        | exception Addr_space.Fault { addr; access } ->
            record_fault th pc ins addr access);
        (match th.state with
        | Runnable -> ()
        | Exited _ | Faulted _ -> continue_ := false);
        if t.stop_requested || gen <> Addr_space.generation t.mem then
          (* A write into a code page (or a map/unmap) invalidated the
             translation mid-block: fall back to the scheduler loop,
             which re-fetches from a fresh decode. *)
          continue_ := false
      done;
      (match t.block_observer with
      | None -> ()
      | Some f ->
          f ~tid:th.tid ~pcs:bb.bb_pc ~n:!attempted
            ~ends_block:(!attempted = len && bb.bb_ends_block));
      !attempted

let step t tid =
  let th = thread t tid in
  if th.state <> Runnable then invalid_arg "Machine.step: thread not runnable";
  ignore (exec_block t th 1)

(* Run up to [n] instructions of [tid]; returns how many retired. *)
let run_quantum t tid n limit =
  let th = thread t tid in
  let executed = ref 0 in
  while
    (match th.state with Runnable -> true | Exited _ | Faulted _ -> false)
    && !executed < n
    && (not t.stop_requested)
    && match limit with
       | Some l -> Int64.compare t.retired_total l < 0
       | None -> true
  do
    let room =
      match limit with
      | None -> n - !executed
      | Some l ->
          let left = Int64.sub l t.retired_total in
          let room = n - !executed in
          if Int64.of_int room <= left then room else Int64.to_int left
    in
    executed := !executed + exec_block t th room
  done;
  !executed

let record_slice t tid n =
  if t.record_schedule && n > 0 then begin
    let merged =
      match t.schedule_rev with
      | (tid', n') :: rest when tid' = tid && not t.schedule_cut ->
          (tid, n + n') :: rest
      | rest -> (tid, n) :: rest
    in
    t.schedule_cut <- false;
    t.schedule_rev <- merged
  end

let runnable_tids t =
  let out = ref [] in
  Array.iter (fun th -> if th.state = Runnable then out := th.tid :: !out) t.thread_arr;
  List.rev !out

let run ?max_ins t =
  let continue_ () =
    (not t.stop_requested)
    && (match max_ins with Some l -> total_retired t < l | None -> true)
  in
  match t.sched with
  | S_free s ->
      let rec loop () =
        if continue_ () then begin
          match runnable_tids t with
          | [] -> ()
          | tids ->
              let tid, quantum =
                match s.pending with
                | Some (tid, left) when (thread t tid).state = Runnable ->
                    s.pending <- None;
                    (tid, left)
                | Some _ | None ->
                    let tid =
                      List.nth tids (Elfie_util.Rng.int s.rng (List.length tids))
                    in
                    let quantum =
                      s.quantum_min
                      + Elfie_util.Rng.int s.rng (s.quantum_max - s.quantum_min + 1)
                    in
                    (tid, quantum)
              in
              let n = run_quantum t tid quantum max_ins in
              record_slice t tid n;
              if n < quantum && (thread t tid).state = Runnable then
                s.pending <- Some (tid, quantum - n);
              loop ()
        end
      in
      loop ()
  | S_recorded slices ->
      let rec loop () =
        if continue_ () then
          match !slices with
          | [] -> ()
          | (tid, n) :: rest ->
              slices := rest;
              let th = thread t tid in
              if th.state = Runnable then begin
                let executed = run_quantum t tid n max_ins in
                ignore executed
              end;
              loop ()
      in
      loop ()
