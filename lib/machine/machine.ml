open Elfie_isa
module Metrics = Elfie_obs.Metrics

type fault =
  | Page_fault of { addr : int64; access : Addr_space.access; pc : int64 }
  | Invalid_opcode of int64
  | Privileged of int64

let pp_fault fmt = function
  | Page_fault { addr; access; pc } ->
      let a =
        match access with
        | Addr_space.Read -> "read"
        | Write -> "write"
        | Exec -> "exec"
      in
      Format.fprintf fmt "page fault (%s) at 0x%Lx, pc=0x%Lx" a addr pc
  | Invalid_opcode pc -> Format.fprintf fmt "invalid opcode at pc=0x%Lx" pc
  | Privileged pc -> Format.fprintf fmt "privileged instruction at pc=0x%Lx" pc

type thread_state = Runnable | Exited of int | Faulted of fault

type thread = {
  tid : int;
  ctx : Context.t;
  mutable state : thread_state;
  mutable retired : int64;
  mutable cycles : int64;
  mutable counter_target : int64 option;
  mutable counter_fired : bool;
  mutable arm_retired : int64;
  mutable arm_cycles : int64;
  mutable mark_target : int64 option;
  mutable mark_retired : int64 option;
  mutable mark_cycles : int64;
  mutable timer_left : int;
}

type scheduler =
  | Free of { seed : int64; quantum_min : int; quantum_max : int }
  | Recorded of (int * int) list

type hooks = {
  mutable on_ins : (int -> int64 -> Insn.t -> unit) option;
  mutable on_mem_read : (int -> int64 -> int -> unit) option;
  mutable on_mem_write : (int -> int64 -> int -> unit) option;
  mutable on_branch : (int -> int64 -> int64 -> bool -> unit) option;
  mutable on_marker : (int -> Insn.t -> unit) option;
  mutable on_thread_start : (int -> unit) option;
  mutable on_thread_exit : (int -> int -> unit) option;
}

type syscall_action = Run_syscall | Skip_syscall

type sched_state =
  | S_free of {
      rng : Elfie_util.Rng.t;
      quantum_min : int;
      quantum_max : int;
      (* A quantum interrupted by a [run ~max_ins] boundary resumes on
         the next call, so segmented driving (the multi-region logger)
         produces exactly the interleaving of one continuous run. *)
      mutable pending : (int * int) option;
    }
  | S_recorded of (int * int) list ref

(* A translated basic block: a straight-line run of decoded instructions
   ending at the first branch/call/syscall/marker (or the translation
   window). Executing one replays the per-instruction interpreter
   exactly, but pays fetch, decode, static cost classification and
   micro-op specialisation once per block instead of once per
   instruction. [bb_uops] holds each instruction compiled to a closure
   with operands pre-resolved (register indices, addressing mode); it is
   only entered on the hook-free batch path. *)
type bb = {
  bb_pc : int64 array;  (* pc of each instruction *)
  bb_ins : Insn.t array;
  bb_next : int64 array;  (* pc just past each instruction *)
  bb_cost : int array;  (* static per-class cost (Timing.ins_cost) *)
  bb_prefix : int array;  (* length n+1; prefix.(i) = sum of bb_cost.(<i) *)
  bb_uops : (t -> thread -> unit) array;
  bb_ends_block : bool;  (* last instruction is a branch/call/syscall *)
  (* The terminator is a plain branch/call/ret (no syscall, marker or
     trap), so a hook-free batch may run the whole block including it. *)
  bb_tail_batchable : bool;
  (* --- superblock tier -------------------------------------------------
     A block whose terminator is a direct branch/call knows its static
     successor pcs; the chain executor links the translations together
     so predicted edges hop block-to-block without touching the
     dispatch loop. *)
  bb_writes_mem : bool;
      (* some instruction may write memory (stores, pushes, calls, or
         any [execute]-fallback form): only such a block can dirty a
         code page mid-block, so only such a block needs the
         per-instruction generation re-check. *)
  bb_succ_taken : int64;  (* direct taken-edge target pc, or -1L *)
  bb_succ_fall : int64;  (* fall-through pc of a [Jcc] tail, or -1L *)
  bb_kill_prefix : int;
      (* length of the leading run of pure (non-faulting, non-reading)
         instructions ending at the first full flag writer, or -1: once
         that prefix runs, all four flags are freshly written, so a
         predecessor chained into this block may elide its own dead
         trailing flag results. *)
  bb_mega_safe : t -> thread -> unit;
      (* the whole block as ONE composed closure (straight-line calls,
         no per-instruction dispatch, SMC re-checks only after
         store-capable slots): the chain executor's hop body. Built over
         the always-safe chain variant — in-block-dead ALU flag results
         elided, compare+Jcc tails fused with eager flag
         materialisation — so it is exact for any whole-block run. Only
         valid for full-block runs: a fault records its slot in
         [t.mega_idx], a mid-block invalidation raises {!Smc_break}. *)
  bb_mega_chain : t -> thread -> unit;
      (* same composition over the exit-dead variant: additionally skips
         flag results the block's static successors provably rewrite
         (lazy fusion, trailing elisions). Physically equal to
         [bb_mega_safe] when the exit assumption buys nothing. Only run
         under the [bb_chain_extra] fuel gate. *)
  mutable bb_links : bb array;
      (* [||] until {!resolve_links} runs; then [| fall; taken |]
         successor translations ([dummy_bb] for unresolvable edges),
         indexed by the direction the terminator recorded in [t.took] —
         the hop transition is an array load, not a RIP compare. *)
  mutable bb_chain_extra : int;
      (* -2: successors not yet resolved; -1: the elided variant is
         unusable (no elisions, or some successor lacks a kill prefix);
         >= 0: extra whole-chain fuel (the largest successor kill
         prefix) that must be available beyond this block's length
         before [bb_uops_chain] may run — the guarantee that the flags
         it leaves stale are rewritten before anything observes them. *)
}

(* Live-counter block for the stats snapshot kept per machine. *)
and core_stats = {
  mutable st_memo_hits : int;
  mutable st_memo_misses : int;
  mutable st_sb_built : int;
  mutable st_sb_broken : int;
  mutable st_x_indirect : int;
  mutable st_x_fuel : int;
  mutable st_x_fault : int;
  mutable st_x_inval : int;
  mutable st_x_stop : int;
}

and t = {
  mem : Addr_space.t;
  mutable thread_list : thread list;  (* reversed *)
  mutable thread_arr : thread array;
  hooks : hooks;
  timing : Timing.t;
  sched : sched_state;
  mutable syscall_handler : t -> int -> unit;
  mutable syscall_filter : (t -> int -> syscall_action) option;
  mutable stop_requested : bool;
  mutable ring0 : int64;
  mutable retired_total : int64;
  mutable record_schedule : bool;
  mutable schedule_rev : (int * int) list;
  mutable schedule_cut : bool;
  block_cache : (int64, bb) Hashtbl.t;
  mutable decode_generation : int;
  mutable timer : (int * int * Elfie_util.Rng.t) option;
  mutable group_exit_status : int option;
  (* Cycle cost accumulator for the instruction currently in [execute];
     a field rather than a per-call ref so the interpreter allocates
     nothing per instruction. Not reentrant — syscall handlers run
     inside [execute] but never recurse into it. *)
  mutable exec_cost : int;
  (* Dynamic (cache, branch, pause) cycle cost accumulated by micro-ops
     across one hook-free batch; static class costs come from
     [bb_prefix]. Zeroed at batch start and flushed into the thread's
     cycle count at batch end. *)
  mutable dyn_cost : int;
  (* Direct-mapped front memo for the block cache: hot loops (whose
     bodies typically span a handful of blocks) fetch translations with
     an unboxed int64 compare instead of an int64-keyed hash probe.
     [block_memo_pc.(slot) = -1L] marks an empty slot. *)
  block_memo_pc : int64 array;
  block_memo : bb array;
  mutable block_observer :
    (tid:int -> pcs:int64 array -> n:int -> ends_block:bool -> unit) option;
  (* Superblock chaining: direct-branch terminators hop straight to the
     successor's translation instead of returning to the dispatch loop.
     Disabled for A/B measurement and differential tests. *)
  mutable chain_enabled : bool;
  (* Slot index a mega-op was executing when it raised: [Fault] leaves
     the faulting slot here, [Smc_break] the count of completed slots. *)
  mutable mega_idx : int;
  (* Direction the last direct branch/call terminator resolved to
     (1 = taken edge, 0 = fall-through), recorded branchlessly by the
     terminator micro-ops. Valid right after a whole-block mega run of a
     directly-terminated block — exactly when the chain executor indexes
     [bb_links] with it. *)
  mutable took : int;
  (* [Addr_space.code_writes] sampled at mega-op entry; the composed
     post-store re-checks compare against it. *)
  mutable mega_cw : int;
  mutable live_links : int;  (* installed chain edges in this generation *)
  stats : core_stats;  (* monotone per-machine counters *)
  stats_flushed : core_stats;  (* snapshot at the last metrics flush *)
  (* [Addr_space.cow_copies t.mem] at the last metrics flush. *)
  mutable cow_flushed : int;
  (* When set, a firing warmup mark also requests a stop: [run] returns
     right after the mark instruction retires, leaving the machine
     warmed and snapshot-ready. *)
  mutable stop_on_mark : bool;
}

let block_memo_size = 64 (* power of two *)

(* Placeholder behind [block_memo_pc.(slot) = -1L] and behind
   unresolved/unresolvable chain links, never matching a pc. *)
let dummy_bb =
  {
    bb_pc = [||];
    bb_ins = [||];
    bb_next = [||];
    bb_cost = [||];
    bb_prefix = [| 0 |];
    bb_uops = [||];
    bb_ends_block = false;
    bb_tail_batchable = false;
    bb_writes_mem = false;
    bb_succ_taken = -1L;
    bb_succ_fall = -1L;
    bb_kill_prefix = -1;
    bb_mega_safe = (fun _ _ -> ());
    bb_mega_chain = (fun _ _ -> ());
    bb_links = [||];
    bb_chain_extra = -1;
  }

let fresh_stats () =
  {
    st_memo_hits = 0;
    st_memo_misses = 0;
    st_sb_built = 0;
    st_sb_broken = 0;
    st_x_indirect = 0;
    st_x_fuel = 0;
    st_x_fault = 0;
    st_x_inval = 0;
    st_x_stop = 0;
  }

let fresh_hooks () =
  {
    on_ins = None;
    on_mem_read = None;
    on_mem_write = None;
    on_branch = None;
    on_marker = None;
    on_thread_start = None;
    on_thread_exit = None;
  }

let create ?(timing = Timing.default) scheduler =
  let sched =
    match scheduler with
    | Free { seed; quantum_min; quantum_max } ->
        S_free
          { rng = Elfie_util.Rng.create seed; quantum_min; quantum_max;
            pending = None }
    | Recorded slices -> S_recorded (ref slices)
  in
  {
    mem = Addr_space.create ();
    thread_list = [];
    thread_arr = [||];
    hooks = fresh_hooks ();
    timing = Timing.create timing;
    sched;
    syscall_handler = (fun _ _ -> failwith "Machine: no syscall handler installed");
    syscall_filter = None;
    stop_requested = false;
    ring0 = 0L;
    retired_total = 0L;
    record_schedule = false;
    schedule_rev = [];
    schedule_cut = false;
    block_cache = Hashtbl.create 1024;
    decode_generation = -1;
    timer = None;
    group_exit_status = None;
    exec_cost = 0;
    dyn_cost = 0;
    block_memo_pc = Array.make block_memo_size (-1L);
    block_memo = Array.make block_memo_size dummy_bb;
    block_observer = None;
    chain_enabled = true;
    mega_idx = 0;
    mega_cw = 0;
    took = 0;
    live_links = 0;
    stats = fresh_stats ();
    stats_flushed = fresh_stats ();
    cow_flushed = 0;
    stop_on_mark = false;
  }

let mem t = t.mem
let hooks t = t.hooks
let timing t = t.timing
let set_syscall_handler t h = t.syscall_handler <- h
let set_syscall_filter t f = t.syscall_filter <- Some f

let add_thread t ctx =
  let tid = Array.length t.thread_arr in
  let th =
    {
      tid;
      ctx;
      state = Runnable;
      retired = 0L;
      cycles = 0L;
      counter_target = None;
      counter_fired = false;
      arm_retired = 0L;
      arm_cycles = 0L;
      mark_target = None;
      mark_retired = None;
      mark_cycles = 0L;
      timer_left = max_int;
    }
  in
  t.thread_list <- th :: t.thread_list;
  t.thread_arr <- Array.of_list (List.rev t.thread_list);
  (match t.timer with
  | Some (interval, _, rng) ->
      th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
  | None -> ());
  (match t.hooks.on_thread_start with Some f -> f tid | None -> ());
  tid

let thread t tid =
  if tid < 0 || tid >= Array.length t.thread_arr then
    invalid_arg (Printf.sprintf "Machine.thread: bad tid %d" tid);
  t.thread_arr.(tid)

let threads t = Array.to_list t.thread_arr

let live_thread_count t =
  Array.fold_left
    (fun n th -> match th.state with Runnable -> n + 1 | _ -> n)
    0 t.thread_arr

let exit_thread t tid ~status =
  let th = thread t tid in
  if th.state = Runnable then begin
    th.state <- Exited status;
    match t.hooks.on_thread_exit with Some f -> f tid status | None -> ()
  end

let exit_all t ~status =
  t.group_exit_status <- Some status;
  Array.iter (fun th -> if th.state = Runnable then exit_thread t th.tid ~status)
    t.thread_arr

let group_exit_status t = t.group_exit_status

let arm_counter t tid ~target =
  let th = thread t tid in
  th.counter_target <- Some target;
  th.arm_retired <- th.retired;
  th.arm_cycles <- th.cycles

let arm_mark t tid ~target =
  let th = thread t tid in
  th.mark_target <- Some target

let set_timer t ~interval ~cycles ~seed =
  let rng = Elfie_util.Rng.create seed in
  t.timer <- Some (interval, cycles, rng);
  Array.iter
    (fun th -> th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval)
    t.thread_arr

let request_stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested

let charge_ring0 t tid ~instructions ~cycles =
  let th = thread t tid in
  th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
  t.ring0 <- Int64.add t.ring0 (Int64.of_int instructions)

let ring0_retired t = t.ring0
let set_record_schedule t b = t.record_schedule <- b

let recorded_schedule t = List.rev t.schedule_rev
let cut_schedule t = t.schedule_cut <- true

let total_retired t = t.retired_total

let elapsed_cycles t =
  Array.fold_left (fun acc th -> max acc th.cycles) 0L t.thread_arr

let all_exited_cleanly t =
  Array.for_all (fun th -> th.state = Exited 0) t.thread_arr

(* --- Fetch with basic-block translation cache -------------------------- *)

let set_block_observer t f = t.block_observer <- f
let translated_blocks t = Hashtbl.length t.block_cache
let set_chain_enabled t b = t.chain_enabled <- b
let translated_superblocks t = t.live_links

type chain_stats = {
  memo_hits : int;
  memo_misses : int;
  superblocks_built : int;
  superblocks_broken : int;
  exits_indirect : int;
  exits_fuel : int;
  exits_fault : int;
  exits_invalidation : int;
  exits_stop : int;
}

let chain_stats t =
  {
    memo_hits = t.stats.st_memo_hits;
    memo_misses = t.stats.st_memo_misses;
    superblocks_built = t.stats.st_sb_built;
    superblocks_broken = t.stats.st_sb_broken;
    exits_indirect = t.stats.st_x_indirect;
    exits_fuel = t.stats.st_x_fuel;
    exits_fault = t.stats.st_x_fault;
    exits_invalidation = t.stats.st_x_inval;
    exits_stop = t.stats.st_x_stop;
  }

(* Block-cache and superblock efficacy families. Counters are process
   monotone: each machine flushes only the delta since its last flush
   (end of every [run]), so concurrent machines in one process
   accumulate rather than clobber. *)
let m_memo_hits =
  Metrics.counter "elfie_core_block_memo_hits"
    ~help:"Translated-block fetches served by the direct-mapped memo"

let m_memo_misses =
  Metrics.counter "elfie_core_block_memo_misses"
    ~help:"Translated-block fetches that fell back to the hash probe"

let m_sb_built =
  Metrics.counter "elfie_core_superblocks_built"
    ~help:"Chain links installed between translated blocks"

let m_sb_broken =
  Metrics.counter "elfie_core_superblocks_broken"
    ~help:"Chain links discarded by translation-cache invalidation"

let m_chain_exits =
  Metrics.counter "elfie_core_chain_exits"
    ~help:"Chained runs broken back to dispatch, by reason"

(* Copy-on-write snapshot efficacy: captures/forks are bumped at the
   call site; CoW page privatisations flush as per-machine deltas with
   the other core counters. *)
let m_snap_captures =
  Metrics.counter "elfie_snapshot_captures_total"
    ~help:"Machine snapshots captured (address space frozen)"

let m_snap_forks =
  Metrics.counter "elfie_snapshot_forks_total"
    ~help:"Machines forked from a snapshot"

let m_snap_cow_pages =
  Metrics.counter "elfie_snapshot_cow_page_copies_total"
    ~help:"Pages privatised lazily by a write into frozen snapshot backing"

let flush_core_metrics t =
  let bump ?labels fam live flushed =
    if live > flushed then
      Metrics.inc ?labels ~by:(float_of_int (live - flushed)) fam
  in
  let s = t.stats and f = t.stats_flushed in
  bump m_memo_hits s.st_memo_hits f.st_memo_hits;
  bump m_memo_misses s.st_memo_misses f.st_memo_misses;
  bump m_sb_built s.st_sb_built f.st_sb_built;
  bump m_sb_broken s.st_sb_broken f.st_sb_broken;
  let reason r = bump ~labels:[ ("reason", r) ] m_chain_exits in
  reason "indirect" s.st_x_indirect f.st_x_indirect;
  reason "fuel" s.st_x_fuel f.st_x_fuel;
  reason "fault" s.st_x_fault f.st_x_fault;
  reason "invalidation" s.st_x_inval f.st_x_inval;
  reason "stop" s.st_x_stop f.st_x_stop;
  f.st_memo_hits <- s.st_memo_hits;
  f.st_memo_misses <- s.st_memo_misses;
  f.st_sb_built <- s.st_sb_built;
  f.st_sb_broken <- s.st_sb_broken;
  f.st_x_indirect <- s.st_x_indirect;
  f.st_x_fuel <- s.st_x_fuel;
  f.st_x_fault <- s.st_x_fault;
  f.st_x_inval <- s.st_x_inval;
  f.st_x_stop <- s.st_x_stop;
  let cow = Addr_space.cow_copies t.mem in
  if cow > t.cow_flushed then begin
    Metrics.inc ~by:(float_of_int (cow - t.cow_flushed)) m_snap_cow_pages;
    t.cow_flushed <- cow
  end

(* --- Instruction semantics --------------------------------------------- *)

let effective_address ctx (m : Insn.mem) =
  let base = match m.base with Some r -> Context.get ctx r | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul (Context.get ctx r) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let truncate_width width v =
  match width with
  | Insn.W8 -> Int64.logand v 0xffL
  | W16 -> Int64.logand v 0xffffL
  | W32 -> Int64.logand v 0xffff_ffffL
  | W64 -> v

let set_zf_sf (flags : Reg.flags) r =
  flags.zf <- r = 0L;
  flags.sf <- r < 0L

(* ALU flag semantics, one function per operation so the micro-op
   compiler can resolve the operation once per block. The result is
   always returned; [alu_writes] says whether it lands in a register. *)
let alu_add (flags : Reg.flags) a b =
  let r = Int64.add a b in
  flags.cf <- Int64.unsigned_compare r a < 0;
  flags.ovf <- (a >= 0L && b >= 0L && r < 0L) || (a < 0L && b < 0L && r >= 0L);
  set_zf_sf flags r;
  r

let alu_sub (flags : Reg.flags) a b =
  let r = Int64.sub a b in
  flags.cf <- Int64.unsigned_compare a b < 0;
  flags.ovf <- (a >= 0L && b < 0L && r < 0L) || (a < 0L && b >= 0L && r >= 0L);
  set_zf_sf flags r;
  r

let alu_and (flags : Reg.flags) a b =
  let r = Int64.logand a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_or (flags : Reg.flags) a b =
  let r = Int64.logor a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_xor (flags : Reg.flags) a b =
  let r = Int64.logxor a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_imul (flags : Reg.flags) a b =
  let r = Int64.mul a b in
  flags.cf <- false;
  flags.ovf <- false;
  set_zf_sf flags r;
  r

let alu_fn = function
  | Insn.Add -> alu_add
  | Sub | Cmp -> alu_sub
  | And | Test -> alu_and
  | Or -> alu_or
  | Xor -> alu_xor
  | Imul -> alu_imul

let alu_writes = function Insn.Cmp | Insn.Test -> false | _ -> true

let exec_shift (flags : Reg.flags) op v n =
  if n = 0 then v
  else begin
    let r =
      match op with
      | Insn.Shl -> Int64.shift_left v n
      | Shr -> Int64.shift_right_logical v n
      | Sar -> Int64.shift_right v n
    in
    let last_out =
      match op with
      | Insn.Shl -> Int64.logand (Int64.shift_right_logical v (64 - n)) 1L
      | Shr | Sar -> Int64.logand (Int64.shift_right_logical v (n - 1)) 1L
    in
    flags.cf <- last_out = 1L;
    flags.ovf <- false;
    set_zf_sf flags r;
    r
  end

let eval_cond (flags : Reg.flags) = function
  | Insn.Eq -> flags.zf
  | Ne -> not flags.zf
  | Lt -> flags.sf <> flags.ovf
  | Ge -> flags.sf = flags.ovf
  | Le -> flags.zf || flags.sf <> flags.ovf
  | Gt -> (not flags.zf) && flags.sf = flags.ovf
  | Ult -> flags.cf
  | Uge -> not flags.cf

let float_lane_op op a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with Insn.Vadd -> fa +. fb | Vmul -> fa *. fb | Vsub -> fa -. fb
  in
  Int64.bits_of_float r

(* Memory helpers for [execute]: the hook dispatch, the stateful cache
   cost and the access itself, with quadword variants hitting the
   [Addr_space] fast paths. Top-level functions accumulating into
   [t.exec_cost] so the interpreter allocates no closures. *)
let[@inline] mem_read t tid addr width =
  (match t.hooks.on_mem_read with Some f -> f tid addr width | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.read t.mem addr width

let[@inline] mem_read64 t tid addr =
  (match t.hooks.on_mem_read with Some f -> f tid addr 8 | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.read_u64 t.mem addr

let[@inline] mem_write t tid addr width v =
  (match t.hooks.on_mem_write with Some f -> f tid addr width | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.write t.mem addr width v

let[@inline] mem_write64 t tid addr v =
  (match t.hooks.on_mem_write with Some f -> f tid addr 8 | None -> ());
  t.exec_cost <- t.exec_cost + Timing.mem_cost t.timing addr;
  Addr_space.write_u64 t.mem addr v

let[@inline] push t tid ctx v =
  let sp = Int64.sub (Context.get ctx RSP) 8L in
  Context.set ctx RSP sp;
  mem_write64 t tid sp v

let[@inline] pop t tid ctx =
  let sp = Context.get ctx RSP in
  let v = mem_read64 t tid sp in
  Context.set ctx RSP (Int64.add sp 8L);
  v

let[@inline] branch_to t tid ctx pc target taken =
  t.exec_cost <- t.exec_cost + Timing.branch_cost t.timing ~pc ~taken;
  (match t.hooks.on_branch with Some f -> f tid pc target taken | None -> ());
  if taken then ctx.Context.rip <- target

(* Execute [ins] for thread [th]; RIP already points past it.
   [base_cost] is the instruction's static class cost, precomputed at
   translation time. *)
let execute t th pc ins base_cost =
  let ctx = th.ctx in
  let flags = ctx.Context.flags in
  let tid = th.tid in
  t.exec_cost <- base_cost;
  (match ins with
  | Insn.Mov_ri (r, v) -> Context.set ctx r v
  | Mov_rr (d, s) -> Context.set ctx d (Context.get ctx s)
  | Load (w, r, m) ->
      let addr = effective_address ctx m in
      let v =
        match w with
        | Insn.W64 -> mem_read64 t tid addr
        | w -> mem_read t tid addr (Insn.width_bytes w)
      in
      Context.set ctx r v
  | Store (w, m, r) ->
      let v = truncate_width w (Context.get ctx r) in
      let addr = effective_address ctx m in
      (match w with
      | Insn.W64 -> mem_write64 t tid addr v
      | w -> mem_write t tid addr (Insn.width_bytes w) v)
  | Lea (r, m) -> Context.set ctx r (effective_address ctx m)
  | Alu_rr (op, d, s) ->
      let r = (alu_fn op) flags (Context.get ctx d) (Context.get ctx s) in
      if alu_writes op then Context.set ctx d r
  | Alu_ri (op, d, imm) ->
      let r = (alu_fn op) flags (Context.get ctx d) imm in
      if alu_writes op then Context.set ctx d r
  | Shift_ri (op, d, n) -> Context.set ctx d (exec_shift flags op (Context.get ctx d) n)
  | Neg d -> Context.set ctx d (alu_sub flags 0L (Context.get ctx d))
  | Push r -> push t tid ctx (Context.get ctx r)
  | Pop r -> Context.set ctx r (pop t tid ctx)
  | Jmp rel ->
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Jcc (c, rel) ->
      let taken = eval_cond flags c in
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) taken
  | Jmp_r r -> branch_to t tid ctx pc (Context.get ctx r) true
  | Jmp_m m ->
      let target = mem_read64 t tid (effective_address ctx m) in
      branch_to t tid ctx pc target true
  | Call rel ->
      push t tid ctx ctx.Context.rip;
      branch_to t tid ctx pc (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Call_r r ->
      push t tid ctx ctx.Context.rip;
      branch_to t tid ctx pc (Context.get ctx r) true
  | Ret -> branch_to t tid ctx pc (pop t tid ctx) true
  | Syscall ->
      let action =
        match t.syscall_filter with
        | Some f -> f t tid
        | None -> Run_syscall
      in
      (match action with
      | Run_syscall -> t.syscall_handler t tid
      | Skip_syscall -> ())
  | Cpuid ->
      (* Vendor string "VX86" in RBX; leaves a recognisable marker. *)
      (match t.hooks.on_marker with Some f -> f tid ins | None -> ());
      Context.set ctx RAX 1L;
      Context.set ctx RBX 0x36385856L;
      Context.set ctx RCX 0L;
      Context.set ctx RDX 0L
  | Nop -> ()
  | Ssc_marker _ | Magic _ -> (
      match t.hooks.on_marker with Some f -> f tid ins | None -> ())
  | Pause -> t.exec_cost <- t.exec_cost + 10
  | Xchg (r, m) ->
      let addr = effective_address ctx m in
      let old = mem_read64 t tid addr in
      mem_write64 t tid addr (Context.get ctx r);
      Context.set ctx r old
  | Cmpxchg (m, r) ->
      let addr = effective_address ctx m in
      let old = mem_read64 t tid addr in
      if old = Context.get ctx RAX then begin
        mem_write64 t tid addr (Context.get ctx r);
        flags.zf <- true
      end
      else begin
        Context.set ctx RAX old;
        flags.zf <- false
      end
  | Ldctx r ->
      let img = Addr_space.read_bytes t.mem (Context.get ctx r) Context.xsave_size in
      Context.xrstor ctx img
  | Stctx r -> Addr_space.write_bytes t.mem (Context.get ctx r) (Context.xsave ctx)
  | Wrfsbase r -> ctx.Context.fs_base <- Context.get ctx r
  | Wrgsbase r -> ctx.Context.gs_base <- Context.get ctx r
  | Rdfsbase r -> Context.set ctx r ctx.Context.fs_base
  | Rdgsbase r -> Context.set ctx r ctx.Context.gs_base
  | Popf ->
      let fl = Reg.flags_of_word (pop t tid ctx) in
      flags.zf <- fl.zf;
      flags.sf <- fl.sf;
      flags.cf <- fl.cf;
      flags.ovf <- fl.ovf
  | Pushf -> push t tid ctx (Reg.flags_to_word flags)
  | Vload (x, m) ->
      let addr = effective_address ctx m in
      Context.set_xmm_lane ctx x 0 (mem_read64 t tid addr);
      Context.set_xmm_lane ctx x 1 (mem_read64 t tid (Int64.add addr 8L))
  | Vstore (m, x) ->
      let addr = effective_address ctx m in
      mem_write64 t tid addr (Context.xmm_lane ctx x 0);
      mem_write64 t tid (Int64.add addr 8L) (Context.xmm_lane ctx x 1)
  | Vop_rr (op, d, s) ->
      Context.set_xmm_lane ctx d 0
        (float_lane_op op (Context.xmm_lane ctx d 0) (Context.xmm_lane ctx s 0));
      Context.set_xmm_lane ctx d 1
        (float_lane_op op (Context.xmm_lane ctx d 1) (Context.xmm_lane ctx s 1))
  | Hlt -> raise (Addr_space.Fault { addr = pc; access = Exec })
  | Ud2 -> raise (Addr_space.Fault { addr = pc; access = Exec }));
  th.cycles <- Int64.add th.cycles (Int64.of_int t.exec_cost)

(* --- Micro-op compilation ---------------------------------------------- *)

(* Addressing mode resolved at translation time: base/index register
   indices and the scale multiply are baked into the closure. Matches
   [effective_address] exactly (scale only applies to the index). *)
let compile_addr (m : Insn.mem) : Bytes.t -> int64 =
  let disp = m.disp in
  match (m.base, m.index) with
  | None, None -> fun _ -> disp
  | Some b, None ->
      let bi = Reg.gpr_index b in
      fun g -> Int64.add (Context.bget g bi) disp
  | None, Some x ->
      let xi = Reg.gpr_index x in
      if m.scale = 1 then fun g -> Int64.add (Context.bget g xi) disp
      else
        let s = Int64.of_int m.scale in
        fun g -> Int64.add (Int64.mul (Context.bget g xi) s) disp
  | Some b, Some x ->
      let bi = Reg.gpr_index b and xi = Reg.gpr_index x in
      if m.scale = 1 then
        fun g ->
          Int64.add
            (Int64.add (Context.bget g bi) (Context.bget g xi))
            disp
      else
        let s = Int64.of_int m.scale in
        fun g ->
          Int64.add
            (Int64.add (Context.bget g bi)
               (Int64.mul (Context.bget g xi) s))
            disp

let rsp_index = Reg.gpr_index Reg.RSP

let cond_fn = function
  | Insn.Eq -> fun (f : Reg.flags) -> f.zf
  | Ne -> fun (f : Reg.flags) -> not f.zf
  | Lt -> fun (f : Reg.flags) -> f.sf <> f.ovf
  | Ge -> fun (f : Reg.flags) -> f.sf = f.ovf
  | Le -> fun (f : Reg.flags) -> f.zf || f.sf <> f.ovf
  | Gt -> fun (f : Reg.flags) -> (not f.zf) && f.sf = f.ovf
  | Ult -> fun (f : Reg.flags) -> f.cf
  | Uge -> fun (f : Reg.flags) -> not f.cf

(* Flag-free value forms used when a liveness pass proved the flag
   results dead: same register result as the [alu_*] functions, no flag
   stores. [Cmp]/[Test] compute nothing at all in that case. *)
let pure_alu = function
  | Insn.Add -> Int64.add
  | Sub -> Int64.sub
  | And | Test -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Imul -> Int64.mul
  | Cmp -> Int64.sub

let[@inline] pure_shift op v n =
  match op with
  | Insn.Shl -> Int64.shift_left v n
  | Shr -> Int64.shift_right_logical v n
  | Sar -> Int64.shift_right v n

let uop_nop : t -> thread -> unit = fun _t _th -> ()

(* Direct evaluation of [Jcc] conditions over the flags a [Cmp]/[Sub]
   of (a, b) would set — lets a fused compare-branch skip flag
   materialisation entirely and compare the operand values it already
   holds in OCaml locals. *)
let cmp_cond_fn = function
  | Insn.Eq -> fun a b -> Int64.equal a b
  | Ne -> fun a b -> not (Int64.equal a b)
  | Lt -> fun a b -> Int64.compare a b < 0
  | Ge -> fun a b -> Int64.compare a b >= 0
  | Le -> fun a b -> Int64.compare a b <= 0
  | Gt -> fun a b -> Int64.compare a b > 0
  | Ult -> fun a b -> Int64.unsigned_compare a b < 0
  | Uge -> fun a b -> Int64.unsigned_compare a b >= 0

(* Same for the flags [Test] of v = a land b sets
   (cf = ovf = false, zf = v=0, sf = v<0). *)
let test_cond_fn = function
  | Insn.Eq -> fun v -> Int64.equal v 0L
  | Ne -> fun v -> not (Int64.equal v 0L)
  | Lt -> fun v -> Int64.compare v 0L < 0
  | Ge -> fun v -> Int64.compare v 0L >= 0
  | Le -> fun v -> Int64.compare v 0L <= 0
  | Gt -> fun v -> Int64.compare v 0L > 0
  | Ult -> fun _ -> false
  | Uge -> fun _ -> true

(* Compile one instruction to its hook-free batch form. Contract: the
   closure performs exactly what [execute] does when every hook is
   absent, except that (a) static class cost is accounted by the caller
   through [bb_prefix] and (b) dynamic cost (cache misses, branch
   prediction, [Pause]) is accumulated into [t.dyn_cost]. Cache and
   predictor state are touched in the same order as [execute], and a
   faulting micro-op leaves the faulting access's cost out of
   [dyn_cost], mirroring [execute] discarding [exec_cost] when the
   fault unwinds it.

   [pc] is the instruction's address and [next] the address just past
   it — both block-translation constants, so a branch's relative target
   is resolved here, at compile time ([execute] sees RIP already
   advanced to [next], hence target = next + rel). Branches only ever
   terminate a block; they are compiled so a hook-free batch can retire
   the terminator too. Syscalls, markers and traps always run through
   [execute].

   Unlike [execute], a micro-op does NOT expect RIP to be advanced
   beforehand — the caller skips that per-instruction store, and the
   batch loop repairs RIP once on exit. The forms that observe RIP bake
   in the [next] constant instead: every branch sets RIP
   unconditionally (a non-taken [Jcc] writes [next]), calls push
   [next], and the [execute] fallback advances RIP itself.

   [flags_dead] comes from the chain tier's liveness pass: when true,
   every flag this instruction would write is overwritten before any
   read, fault point or chain exit, so ALU/shift/neg forms skip flag
   materialisation ([Cmp]/[Test] become complete no-ops). Exact
   semantics ([flags_dead = false]) remain the fallback everywhere. *)
let compile_ins ~pc ~next ?(flags_dead = false) (ins : Insn.t) :
    t -> thread -> unit =
  match ins with
  | Insn.Alu_rr (op, d, s) when flags_dead ->
      if alu_writes op then begin
        let f = pure_alu op and di = Reg.gpr_index d and si = Reg.gpr_index s in
        fun _t th ->
          let g = th.ctx.Context.gprs in
          Context.bset g di (f (Context.bget g di) (Context.bget g si))
      end
      else uop_nop
  | Alu_ri (op, d, imm) when flags_dead ->
      if alu_writes op then begin
        let f = pure_alu op and di = Reg.gpr_index d in
        fun _t th ->
          let g = th.ctx.Context.gprs in
          Context.bset g di (f (Context.bget g di) imm)
      end
      else uop_nop
  | Shift_ri (op, d, n) when flags_dead && n > 0 ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Context.bset g di (pure_shift op (Context.bget g di) n)
  | Neg d when flags_dead ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Context.bset g di (Int64.neg (Context.bget g di))
  | Insn.Jmp rel ->
      let target = Int64.add next (Int64.of_int rel) in
      fun t th ->
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        t.took <- 1;
        th.ctx.Context.rip <- target
  | Jcc (c, rel) ->
      let cond = cond_fn c in
      let target = Int64.add next (Int64.of_int rel) in
      (* Both successor RIPs pre-boxed in a pair indexed by the branch
         direction: a data-dependent guest branch becomes a host array
         load instead of a (frequently mispredicted) host branch. *)
      let tgts = [| next; target |] in
      fun t th ->
        let ctx = th.ctx in
        let taken = cond ctx.Context.flags in
        t.dyn_cost <- t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken;
        let ti = Bool.to_int taken in
        t.took <- ti;
        ctx.Context.rip <- Array.unsafe_get tgts ti
  | Jmp_r r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let ctx = th.ctx in
        let target = Context.bget ctx.Context.gprs ri in
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Jmp_m m ->
      let a = compile_addr m in
      fun t th ->
        let ctx = th.ctx in
        let addr = a ctx.Context.gprs in
        let c = Timing.mem_cost t.timing addr in
        let target = Addr_space.read_u64 t.mem addr in
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Call rel ->
      let target = Int64.add next (Int64.of_int rel) in
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Int64.sub (Context.bget g rsp_index) 8L in
        Context.bset g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp next;
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        t.took <- 1;
        ctx.Context.rip <- target
  | Call_r r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Int64.sub (Context.bget g rsp_index) 8L in
        Context.bset g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp next;
        (* Target read after the push, as [execute] does (a call through
           RSP sees the decremented stack pointer). *)
        let target = Context.bget g ri in
        t.dyn_cost <-
          t.dyn_cost + c + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Ret ->
      fun t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        let sp = Context.bget g rsp_index in
        let c = Timing.mem_cost t.timing sp in
        let target = Addr_space.read_u64 t.mem sp in
        t.dyn_cost <- t.dyn_cost + c;
        Context.bset g rsp_index (Int64.add sp 8L);
        t.dyn_cost <-
          t.dyn_cost + Timing.branch_cost t.timing ~pc ~taken:true;
        ctx.Context.rip <- target
  | Insn.Mov_ri (r, v) ->
      let ri = Reg.gpr_index r in
      fun _t th -> Context.bset th.ctx.Context.gprs ri v
  | Mov_rr (d, s) ->
      let di = Reg.gpr_index d and si = Reg.gpr_index s in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Context.bset g di (Context.bget g si)
  | Load (Insn.W64, r, m) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        let v = Addr_space.read_u64 t.mem addr in
        t.dyn_cost <- t.dyn_cost + c;
        Context.bset g ri v
  | Load (w, r, m) ->
      let a = compile_addr m
      and ri = Reg.gpr_index r
      and wb = Insn.width_bytes w in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        let v = Addr_space.read t.mem addr wb in
        t.dyn_cost <- t.dyn_cost + c;
        Context.bset g ri v
  | Store (Insn.W64, m, r) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = Context.bget g ri in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        Addr_space.write_u64 t.mem addr v;
        t.dyn_cost <- t.dyn_cost + c
  | Store (w, m, r) ->
      let a = compile_addr m
      and ri = Reg.gpr_index r
      and wb = Insn.width_bytes w in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = truncate_width w (Context.bget g ri) in
        let addr = a g in
        let c = Timing.mem_cost t.timing addr in
        Addr_space.write t.mem addr wb v;
        t.dyn_cost <- t.dyn_cost + c
  | Lea (r, m) ->
      let a = compile_addr m and ri = Reg.gpr_index r in
      fun _t th ->
        let g = th.ctx.Context.gprs in
        Context.bset g ri (a g)
  | Alu_rr (op, d, s) ->
      let f = alu_fn op and di = Reg.gpr_index d and si = Reg.gpr_index s in
      if alu_writes op then fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Context.bset g di
          (f ctx.Context.flags (Context.bget g di) (Context.bget g si))
      else fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        ignore
          (f ctx.Context.flags (Context.bget g di) (Context.bget g si))
  | Alu_ri (op, d, imm) ->
      let f = alu_fn op and di = Reg.gpr_index d in
      if alu_writes op then fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Context.bset g di (f ctx.Context.flags (Context.bget g di) imm)
      else fun _t th ->
        let ctx = th.ctx in
        ignore
          (f ctx.Context.flags
             (Context.bget ctx.Context.gprs di)
             imm)
  | Shift_ri (op, d, n) ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Context.bset g di
          (exec_shift ctx.Context.flags op (Context.bget g di) n)
  | Neg d ->
      let di = Reg.gpr_index d in
      fun _t th ->
        let ctx = th.ctx in
        let g = ctx.Context.gprs in
        Context.bset g di
          (alu_sub ctx.Context.flags 0L (Context.bget g di))
  | Push r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let v = Context.bget g ri in
        let sp = Int64.sub (Context.bget g rsp_index) 8L in
        Context.bset g rsp_index sp;
        let c = Timing.mem_cost t.timing sp in
        Addr_space.write_u64 t.mem sp v;
        t.dyn_cost <- t.dyn_cost + c
  | Pop r ->
      let ri = Reg.gpr_index r in
      fun t th ->
        let g = th.ctx.Context.gprs in
        let sp = Context.bget g rsp_index in
        let c = Timing.mem_cost t.timing sp in
        let v = Addr_space.read_u64 t.mem sp in
        t.dyn_cost <- t.dyn_cost + c;
        Context.bset g rsp_index (Int64.add sp 8L);
        Context.bset g ri v
  | Nop -> fun _t _th -> ()
  | Pause -> fun t _th -> t.dyn_cost <- t.dyn_cost + 10
  | ins ->
      fun t th ->
        th.ctx.Context.rip <- next;
        execute t th pc ins 0

(* --- Flag liveness ------------------------------------------------------ *)

(* How an instruction interacts with the four materialised flags
   (ZF/SF/CF/OVF), as seen by the backward liveness pass.

   [F_observe] is deliberately broad: it covers true readers ([Jcc],
   [Pushf]) and every instruction that can fault or falls back to
   [execute] (memory forms, syscalls, markers, traps). Treating a
   potential fault point as a reader forces all earlier flag writes to
   materialise, which makes the flags architecturally exact at every
   fault — so elision never needs fault-time re-materialisation
   machinery: exactness holds by construction. *)
type flag_class = F_kill | F_neutral | F_observe

let flag_class (ins : Insn.t) =
  match ins with
  | Insn.Alu_rr _ | Alu_ri _ | Neg _ -> F_kill
  | Shift_ri (_, _, n) -> if n > 0 then F_kill else F_neutral
  | Mov_ri _ | Mov_rr _ | Lea _ | Nop | Pause | Jmp _ | Jmp_r _ -> F_neutral
  | _ -> F_observe

(* Conservative may-write-memory predicate: listed forms are provably
   store-free, anything else (including every [execute] fallback) is
   assumed to write. Only a writing instruction can dirty a code page,
   i.e. move the decode generation mid-block. *)
let may_write_mem (ins : Insn.t) =
  match ins with
  | Insn.Mov_ri _ | Mov_rr _ | Load _ | Lea _ | Alu_rr _ | Alu_ri _
  | Shift_ri _ | Neg _ | Pop _ | Jmp _ | Jcc _ | Jmp_r _ | Jmp_m _ | Nop
  | Pause | Popf | Vload _ | Vop_rr _ | Rdfsbase _ | Rdgsbase _ | Wrfsbase _
  | Wrgsbase _ | Ldctx _ | Hlt | Ud2 ->
      false
  | _ -> true

(* Provably non-faulting forms (register/immediate only, no memory
   access, not routed through the [execute] fallback). Anything else may
   raise {!Addr_space.Fault}. *)
let may_fault (ins : Insn.t) =
  match ins with
  | Insn.Mov_ri _ | Mov_rr _ | Lea _ | Alu_rr _ | Alu_ri _ | Shift_ri _
  | Neg _ | Jmp _ | Jcc _ | Jmp_r _ | Nop | Pause | Vop_rr _ | Rdfsbase _
  | Rdgsbase _ | Wrfsbase _ | Wrgsbase _ ->
      false
  | _ -> true

(* Raised by a mega-op when a store dirtied a code page mid-block:
   [t.mega_idx] holds the number of completed slots, and — stores being
   flag-observation barriers — the flags are exact at that point. *)
exception Smc_break

(* Compose a block's micro-op array into one straight-line closure for
   whole-block runs: no per-slot array fetch, indirect-call dispatch or
   bounds bookkeeping, and the self-modifying-code re-check collapses
   from every slot to just the store-capable ones ([code_writes] can
   only move at a store). Fault attribution survives composition through
   [t.mega_idx]: each fault-capable slot records its index before
   running, so the handler can repair RIP and report the precise slot
   exactly as the interpreted loop does. *)
let compose_mega (bb_ins : Insn.t array) (uops : (t -> thread -> unit) array) =
  let n = Array.length uops in
  (* Per-slot wrapper carrying the attribution/re-check obligations. *)
  let slot i =
    let u = Array.unsafe_get uops i in
    if may_write_mem bb_ins.(i) && i < n - 1 then (fun t th ->
      (* A last-slot store needs no composed re-check: the hop loop
         re-checks the generation after every completed block. *)
      t.mega_idx <- i;
      u t th;
      if t.mega_cw <> Addr_space.code_writes t.mem then begin
        t.mega_idx <- i + 1;
        raise Smc_break
      end)
    else if may_fault bb_ins.(i) then (fun t th ->
      t.mega_idx <- i;
      u t th)
    else u
  in
  (* Flatten into one arity-specialised sequencing closure: n + 1
     indirect calls per run instead of the 2n - 1 a pairwise fold
     costs. Longer blocks chunk by eight and fold the chunks. *)
  let slots = Array.init n slot in
  let rec seq lo n =
    match n with
    | 1 -> Array.unsafe_get slots lo
    | 2 ->
        let a = slots.(lo) and b = slots.(lo + 1) in
        fun t th ->
          a t th;
          b t th
    | 3 ->
        let a = slots.(lo) and b = slots.(lo + 1) and c = slots.(lo + 2) in
        fun t th ->
          a t th;
          b t th;
          c t th
    | 4 ->
        let a = slots.(lo)
        and b = slots.(lo + 1)
        and c = slots.(lo + 2)
        and d = slots.(lo + 3) in
        fun t th ->
          a t th;
          b t th;
          c t th;
          d t th
    | 5 ->
        let a = slots.(lo)
        and b = slots.(lo + 1)
        and c = slots.(lo + 2)
        and d = slots.(lo + 3)
        and e = slots.(lo + 4) in
        fun t th ->
          a t th;
          b t th;
          c t th;
          d t th;
          e t th
    | 6 ->
        let a = slots.(lo)
        and b = slots.(lo + 1)
        and c = slots.(lo + 2)
        and d = slots.(lo + 3)
        and e = slots.(lo + 4)
        and f = slots.(lo + 5) in
        fun t th ->
          a t th;
          b t th;
          c t th;
          d t th;
          e t th;
          f t th
    | 7 ->
        let a = slots.(lo)
        and b = slots.(lo + 1)
        and c = slots.(lo + 2)
        and d = slots.(lo + 3)
        and e = slots.(lo + 4)
        and f = slots.(lo + 5)
        and g = slots.(lo + 6) in
        fun t th ->
          a t th;
          b t th;
          c t th;
          d t th;
          e t th;
          f t th;
          g t th
    | 8 ->
        let a = slots.(lo)
        and b = slots.(lo + 1)
        and c = slots.(lo + 2)
        and d = slots.(lo + 3)
        and e = slots.(lo + 4)
        and f = slots.(lo + 5)
        and g = slots.(lo + 6)
        and h = slots.(lo + 7) in
        fun t th ->
          a t th;
          b t th;
          c t th;
          d t th;
          e t th;
          f t th;
          g t th;
          h t th
    | n ->
        let a = seq lo 8 and b = seq (lo + 8) (n - 8) in
        fun t th ->
          a t th;
          b t th
  in
  seq 0 n

(* Fuse a [Cmp]/[Test]/[Sub] immediately preceding the block's
   terminating [Jcc] into one micro-op that evaluates the condition
   directly on the operand values (held in OCaml locals) — no flag
   round-trip through the context. Only the chain tier runs this (the
   pair must execute atomically, so only whole-block runs qualify). The
   fused op occupies the compare's slot; the [Jcc] slot becomes a no-op,
   keeping the 1:1 slot/instruction mapping (neither can fault).

   [eager]: materialise the compare's flags exactly as the unfused pair
   would (the always-safe chain variant). When [eager] is false, flag
   materialisation is skipped entirely — the exit-dead variant, legal
   only under the cross-block liveness gate, which guarantees every
   static successor rewrites all four flags before anything observes
   them. *)
let compile_fused_tail ~eager ~jcc_pc ~jcc_next (alu : Insn.t) c ~rel :
    (t -> thread -> unit) option =
  let target = Int64.add jcc_next (Int64.of_int rel) in
  (* Successor RIPs indexed by direction — host-branch-free select, as
     in the plain [Jcc] micro-op. *)
  let tgts = [| jcc_next; target |] in
  let finish t (ctx : Context.t) taken =
    t.dyn_cost <- t.dyn_cost + Timing.branch_cost t.timing ~pc:jcc_pc ~taken;
    let ti = Bool.to_int taken in
    t.took <- ti;
    ctx.Context.rip <- Array.unsafe_get tgts ti
  in
  match alu with
  | Insn.Alu_ri (Insn.Cmp, r, imm) ->
      let cond = cmp_cond_fn c and ri = Reg.gpr_index r in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let a = Context.bget ctx.Context.gprs ri in
           ignore (alu_sub ctx.Context.flags a imm);
           finish t ctx (cond a imm)
         else fun t th ->
           let ctx = th.ctx in
           finish t ctx (cond (Context.bget ctx.Context.gprs ri) imm))
  | Alu_rr (Cmp, d, s) ->
      let cond = cmp_cond_fn c
      and di = Reg.gpr_index d
      and si = Reg.gpr_index s in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g di and b = Context.bget g si in
           ignore (alu_sub ctx.Context.flags a b);
           finish t ctx (cond a b)
         else fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           finish t ctx (cond (Context.bget g di) (Context.bget g si)))
  | Alu_ri (Test, r, imm) ->
      let cond = test_cond_fn c and ri = Reg.gpr_index r in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let a = Context.bget ctx.Context.gprs ri in
           ignore (alu_and ctx.Context.flags a imm);
           finish t ctx (cond (Int64.logand a imm))
         else fun t th ->
           let ctx = th.ctx in
           finish t ctx
             (cond (Int64.logand (Context.bget ctx.Context.gprs ri) imm)))
  | Alu_rr (Test, d, s) ->
      let cond = test_cond_fn c
      and di = Reg.gpr_index d
      and si = Reg.gpr_index s in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g di and b = Context.bget g si in
           ignore (alu_and ctx.Context.flags a b);
           finish t ctx (cond (Int64.logand a b))
         else fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           finish t ctx
             (cond (Int64.logand (Context.bget g di) (Context.bget g si))))
  | Alu_ri (Sub, r, imm) ->
      (* The loop-backedge idiom (Sub RCX, 1; Jcc Ne head): decrement,
         then compare the PRE-decrement value against the immediate —
         [Sub]'s flags match [Cmp a imm] exactly. *)
      let cond = cmp_cond_fn c and ri = Reg.gpr_index r in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g ri in
           Context.bset g ri (alu_sub ctx.Context.flags a imm);
           finish t ctx (cond a imm)
         else fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g ri in
           Context.bset g ri (Int64.sub a imm);
           finish t ctx (cond a imm))
  | Alu_rr (Sub, d, s) ->
      let cond = cmp_cond_fn c
      and di = Reg.gpr_index d
      and si = Reg.gpr_index s in
      Some
        (if eager then fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g di and b = Context.bget g si in
           Context.bset g di (alu_sub ctx.Context.flags a b);
           finish t ctx (cond a b)
         else fun t th ->
           let ctx = th.ctx in
           let g = ctx.Context.gprs in
           let a = Context.bget g di and b = Context.bget g si in
           Context.bset g di (Int64.sub a b);
           finish t ctx (cond a b))
  | _ -> None

(* --- Block translation -------------------------------------------------- *)

let max_ins_bytes = 16
let block_window = 512  (* bytes of code decoded per translation *)
let max_block_ins = 64

(* Markers terminate translation too: they are rare, and ending blocks
   at them keeps marker-driven observers on block boundaries. *)
let terminates_block ins =
  match Insn.classify ins with
  | Insn.K_branch | K_call | K_syscall -> true
  | K_alu | K_load | K_store | K_vector -> false
  | K_other -> (
      match ins with
      | Insn.Cpuid | Ssc_marker _ | Magic _ | Hlt | Ud2 -> true
      | _ -> false)

let build_block t pc =
  let buf = Addr_space.read_avail t.mem pc block_window in
  let len = Bytes.length buf in
  let full = len >= block_window in
  let r = Elfie_util.Byteio.Reader.of_bytes buf in
  let acc = ref [] in
  let count = ref 0 in
  let stop = ref false in
  while not !stop do
    let off = Elfie_util.Byteio.Reader.pos r in
    (* When the window filled, stop before an instruction that could be
       cut short by it (encodings are at most [max_ins_bytes]); it will
       head the next block, decoded from a fresh window. *)
    if !count >= max_block_ins || (full && off > block_window - max_ins_bytes)
    then stop := true
    else
      match Codec.decode r with
      | ins ->
          acc := (off, ins, Elfie_util.Byteio.Reader.pos r) :: !acc;
          incr count;
          if terminates_block ins then stop := true
      | exception Codec.Invalid _ ->
          if !count = 0 then
            raise (Addr_space.Fault { addr = pc; access = Exec });
          stop := true
      | exception Elfie_util.Byteio.Truncated _ ->
          (* The first instruction runs off the end of mapped memory:
             the truncation point is the first unmapped byte, the same
             fault address a 16-byte fetch window would report. A later
             instruction merely ends the block here; re-fetching at its
             pc reports the precise fault. *)
          if !count = 0 then
            raise
              (Addr_space.Fault
                 { addr = Int64.add pc (Int64.of_int len); access = Exec });
          stop := true
  done;
  let items = Array.of_list (List.rev !acc) in
  let n = Array.length items in
  let _, ins0, _ = items.(0) in
  let bb_pc = Array.make n 0L in
  let bb_ins = Array.make n ins0 in
  let bb_next = Array.make n 0L in
  let bb_cost = Array.make n 0 in
  Array.iteri
    (fun i (off, ins, end_off) ->
      bb_pc.(i) <- Int64.add pc (Int64.of_int off);
      bb_ins.(i) <- ins;
      bb_next.(i) <- Int64.add pc (Int64.of_int end_off);
      bb_cost.(i) <- Timing.ins_cost t.timing (Insn.classify ins))
    items;
  let bb_prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    bb_prefix.(i + 1) <- bb_prefix.(i) + bb_cost.(i)
  done;
  let bb_uops =
    Array.init n (fun i ->
        compile_ins ~pc:bb_pc.(i) ~next:bb_next.(i) bb_ins.(i))
  in
  let bb_ends_block =
    match Insn.classify bb_ins.(n - 1) with
    | Insn.K_branch | K_call | K_syscall -> true
    | K_alu | K_load | K_store | K_vector | K_other -> false
  in
  let bb_tail_batchable =
    match bb_ins.(n - 1) with
    | Insn.Jmp _ | Jcc _ | Jmp_r _ | Jmp_m _ | Call _ | Call_r _ | Ret -> true
    | _ -> false
  in
  let bb_writes_mem = Array.exists may_write_mem bb_ins in
  (* Static successor pcs: only a direct branch/call terminator yields
     chainable edges. *)
  let bb_succ_taken, bb_succ_fall =
    if not bb_tail_batchable then (-1L, -1L)
    else
      let next = bb_next.(n - 1) in
      match bb_ins.(n - 1) with
      | Insn.Jmp rel -> (Int64.add next (Int64.of_int rel), -1L)
      | Jcc (_, rel) -> (Int64.add next (Int64.of_int rel), next)
      | Call rel -> (Int64.add next (Int64.of_int rel), -1L)
      | _ -> (-1L, -1L)
  in
  let bb_kill_prefix =
    let rec go i =
      if i >= n then -1
      else
        match flag_class bb_ins.(i) with
        | F_kill -> i + 1
        | F_neutral -> go (i + 1)
        | F_observe -> -1
    in
    go 0
  in
  (* Chain-variant micro-ops, parameterised on the exit-liveness
     assumption. [exit_dead = false] builds the ALWAYS-SAFE variant:
     flag results dead before any in-block observation point (reader or
     fault-capable slot) are elided, and a compare+Jcc tail fuses with
     eager flag materialisation — exact for any whole-block run, no
     successor knowledge needed. [exit_dead = true] additionally assumes
     the flags are dead at block exit (lazy fusion, trailing elisions):
     legal only under the cross-block gate that every static successor
     starts with a pure full-flag-killing prefix. *)
  let chain_variant ~exit_dead =
    let fused =
      if n >= 2 then
        match bb_ins.(n - 1) with
        | Insn.Jcc (c, rel) ->
            compile_fused_tail ~eager:(not exit_dead) ~jcc_pc:bb_pc.(n - 1)
              ~jcc_next:bb_next.(n - 1) bb_ins.(n - 2) c ~rel
        | _ -> None
      else None
    in
    let fused_at = match fused with Some _ -> n - 2 | None -> n in
    (* Backward pass: [dead] = all four flags overwritten before any
       observation point. An eager fused pair writes the compare's flags
       in full, so it kills like the unfused compare would. *)
    let dead = Array.make n false in
    let d = ref exit_dead in
    for i = n - 1 downto 0 do
      if i >= fused_at then begin
        dead.(i) <- true;
        if i = fused_at && not exit_dead then d := true
      end
      else begin
        dead.(i) <- !d;
        match flag_class bb_ins.(i) with
        | F_kill -> d := true
        | F_neutral -> ()
        | F_observe -> d := false
      end
    done;
    let elides i = dead.(i) && flag_class bb_ins.(i) = F_kill in
    let any = ref (fused <> None) in
    for i = 0 to fused_at - 1 do
      if elides i then any := true
    done;
    if not !any then bb_uops
    else
      Array.init n (fun i ->
          match fused with
          | Some f when i = n - 2 -> f
          | Some _ when i = n - 1 -> uop_nop
          | _ ->
              if elides i then
                compile_ins ~pc:bb_pc.(i) ~next:bb_next.(i) ~flags_dead:true
                  bb_ins.(i)
              else bb_uops.(i))
  in
  let bb_uops_safe = chain_variant ~exit_dead:false in
  (* Exit-dead variant only when a direct taken edge exists — an
     indirect or cut tail leaves an unknown successor, so its exit flags
     must stay exact. *)
  let bb_uops_chain =
    if Int64.equal bb_succ_taken (-1L) then bb_uops_safe
    else chain_variant ~exit_dead:true
  in
  let bb_mega_safe = compose_mega bb_ins bb_uops_safe in
  let bb_mega_chain =
    if bb_uops_chain == bb_uops_safe then bb_mega_safe
    else compose_mega bb_ins bb_uops_chain
  in
  let _, _, span = items.(n - 1) in
  (* Writes into the decoded span must invalidate this translation. *)
  Addr_space.note_code t.mem ~addr:pc ~len:span;
  {
    bb_pc;
    bb_ins;
    bb_next;
    bb_cost;
    bb_prefix;
    bb_uops;
    bb_ends_block;
    bb_tail_batchable;
    bb_writes_mem;
    bb_succ_taken;
    bb_succ_fall;
    bb_kill_prefix;
    bb_mega_safe;
    bb_mega_chain;
    bb_links = [||];
    bb_chain_extra = -2;
  }

let fetch_block t pc =
  let gen = Addr_space.generation t.mem in
  if gen <> t.decode_generation then begin
    Hashtbl.reset t.block_cache;
    t.decode_generation <- gen;
    Array.fill t.block_memo_pc 0 block_memo_size (-1L);
    (* Chain links are pointers between translations of the discarded
       generation: the reset breaks every superblock wholesale, so a
       chain crossing the dirtied page can never survive it. *)
    t.stats.st_sb_broken <- t.stats.st_sb_broken + t.live_links;
    t.live_links <- 0
  end;
  let slot = Int64.to_int pc land (block_memo_size - 1) in
  if Int64.equal (Array.unsafe_get t.block_memo_pc slot) pc then begin
    t.stats.st_memo_hits <- t.stats.st_memo_hits + 1;
    Array.unsafe_get t.block_memo slot
  end
  else begin
    t.stats.st_memo_misses <- t.stats.st_memo_misses + 1;
    let b =
      match Hashtbl.find_opt t.block_cache pc with
      | Some b -> b
      | None ->
          let b = build_block t pc in
          Hashtbl.replace t.block_cache pc b;
          b
    in
    t.block_memo_pc.(slot) <- pc;
    t.block_memo.(slot) <- b;
    b
  end

(* Retirement epilogue shared by every executed instruction: perf
   counter, timer interrupt, warmup mark, armed-counter graceful exit —
   in the historical per-step order. *)
let retire t th =
  th.retired <- Int64.add th.retired 1L;
  t.retired_total <- Int64.add t.retired_total 1L;
  (match t.timer with
  | Some (interval, cycles, rng) ->
      th.timer_left <- th.timer_left - 1;
      if th.timer_left <= 0 then begin
        th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
        t.ring0 <- Int64.add t.ring0 (Int64.of_int cycles);
        th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
      end
  | None -> ());
  (match th.mark_target with
  | Some target when th.retired >= target ->
      th.mark_target <- None;
      th.mark_retired <- Some th.retired;
      th.mark_cycles <- th.cycles;
      if t.stop_on_mark then t.stop_requested <- true
  | Some _ | None -> ());
  match th.counter_target with
  | Some target when th.retired >= target ->
      (* The counter reaches its count even when this very instruction
         made the thread exit (e.g. a region ending in exit_group). *)
      th.counter_fired <- true;
      (match th.state with
      | Runnable -> exit_thread t th.tid ~status:0
      | Exited _ | Faulted _ -> ())
  | Some _ | None -> ()

let record_fault th pc ins addr access =
  (* Ud2/Hlt reuse the fault exception with access=Exec, addr=pc. *)
  match ins with
  | Insn.Ud2 -> th.state <- Faulted (Invalid_opcode pc)
  | Hlt -> th.state <- Faulted (Privileged pc)
  | _ -> th.state <- Faulted (Page_fault { addr; access; pc })

(* Shared hook-free batch inner loop: execute [uops.(0 .. fuel-1)] for
   [b]. Returns the count of completed micro-ops, or [-(idx+1)] when
   micro-op [idx] faulted (RIP and the thread's fault state are already
   recorded). A store-free block provably cannot dirty a code page, so
   its loop runs with ZERO per-instruction invalidation re-checks; a
   block with stores keeps the per-instruction check, polling the
   address space's [code_writes] fast-path flag — between system calls
   (and syscalls never run here: they terminate translation and are not
   tail-batchable) a code-page write is the only way the decode
   generation can move, so the two checks are equivalent. *)
let run_uops t th (b : bb) uops fuel =
  let i = ref 0 in
  let fault = ref 0 in
  if b.bb_writes_mem then begin
    let cw = Addr_space.code_writes t.mem in
    let brk = ref false in
    while (not !brk) && !i < fuel do
      match (Array.unsafe_get uops !i) t th with
      | () ->
          incr i;
          if cw <> Addr_space.code_writes t.mem then brk := true
      | exception Addr_space.Fault { addr; access } ->
          (* The per-step path advances RIP before executing; a fault
             leaves it past the faulting instruction. *)
          let idx = !i in
          th.ctx.Context.rip <- Array.unsafe_get b.bb_next idx;
          record_fault th
            (Array.unsafe_get b.bb_pc idx)
            (Array.unsafe_get b.bb_ins idx)
            addr access;
          fault := -(idx + 1);
          brk := true
    done
  end
  else begin
    let brk = ref false in
    while (not !brk) && !i < fuel do
      match (Array.unsafe_get uops !i) t th with
      | () -> incr i
      | exception Addr_space.Fault { addr; access } ->
          let idx = !i in
          th.ctx.Context.rip <- Array.unsafe_get b.bb_next idx;
          record_fault th
            (Array.unsafe_get b.bb_pc idx)
            (Array.unsafe_get b.bb_ins idx)
            addr access;
          fault := -(idx + 1);
          brk := true
    done
  end;
  if !fault <> 0 then !fault else !i

(* Events fire when [retired] reaches the target: a batch must stop one
   instruction short of it so the event runs on the per-step path. *)
let[@inline] cap_target fuel target retired =
  let room = Int64.sub target retired in
  if Int64.compare room (Int64.of_int fuel) <= 0 then
    if Int64.compare room 1L < 0 then 0 else Int64.to_int room - 1
  else fuel

(* Largest batch budget that keeps every retirement event (timer tick,
   warmup mark, armed counter) strictly outside the batch. [off] is the
   count of instructions already executed this call but not yet flushed
   into the thread's retirement counters (the chain executor defers the
   boxed-int64 updates to its exit). *)
let[@inline] event_fuel_off t th limit off =
  let fuel = limit in
  let fuel =
    match t.timer with
    | Some _ ->
        if th.timer_left - off - 1 < fuel then th.timer_left - off - 1
        else fuel
    | None -> fuel
  in
  let fuel =
    match th.mark_target with
    | Some tg -> cap_target fuel tg (Int64.add th.retired (Int64.of_int off))
    | None -> fuel
  in
  match th.counter_target with
  | Some tg -> cap_target fuel tg (Int64.add th.retired (Int64.of_int off))
  | None -> fuel

let[@inline] event_fuel t th limit = event_fuel_off t th limit 0

(* Deferred bulk retirement of [ok] batched instructions: bit-identical
   to per-instruction [retire] because the fuel cap kept every event
   strictly outside the batch. Static class cost comes from the prefix
   sums, dynamic cost from the accumulator the micro-ops fed. *)
let[@inline] bulk_retire t th (b : bb) ok =
  th.retired <- Int64.add th.retired (Int64.of_int ok);
  t.retired_total <- Int64.add t.retired_total (Int64.of_int ok);
  (match t.timer with
  | Some _ -> th.timer_left <- th.timer_left - ok
  | None -> ());
  th.cycles <-
    Int64.add th.cycles
      (Int64.of_int (Array.unsafe_get b.bb_prefix ok + t.dyn_cost));
  t.dyn_cost <- 0

(* First chain visit of a direct-tail block: translate both static
   successors eagerly and install the links (the superblock's edges).
   Eager rather than on first traversal of each edge, so a hot backedge
   does not wait for its rarely-taken sibling before the elided variant
   can qualify. A successor that cannot be fetched (unmapped target)
   leaves its link dummy; arriving there exits the chain and the
   dispatch path reports the precise fault. Also decides the elision
   gate [bb_chain_extra]: the flag-elided variant is usable only when
   every static successor starts with a pure full-flag-killing prefix
   (so whatever the branch decides, the flags the variant leaves stale
   are rewritten before any observation point), and running it
   additionally requires fuel for this block plus the largest such
   prefix. *)
let resolve_links t (b : bb) =
  let link pc =
    if Int64.equal pc (-1L) then dummy_bb
    else
      match fetch_block t pc with
      | nb ->
          t.stats.st_sb_built <- t.stats.st_sb_built + 1;
          t.live_links <- t.live_links + 1;
          nb
      | exception Addr_space.Fault _ -> dummy_bb
  in
  let lf = link b.bb_succ_fall in
  let lt = link b.bb_succ_taken in
  b.bb_links <- [| lf; lt |];
  let extra =
    if b.bb_mega_chain == b.bb_mega_safe then -1
    else begin
      let edge pc l =
        if Int64.equal pc (-1L) then 0
        else if l == dummy_bb || l.bb_kill_prefix < 0 then -1
        else l.bb_kill_prefix
      in
      let a = edge b.bb_succ_taken lt in
      let f = edge b.bb_succ_fall lf in
      if a < 0 || f < 0 then -1 else if a > f then a else f
    end
  in
  b.bb_chain_extra <- extra

(* Classic single-block path: hook-free batch of the translation, then
   the per-instruction remainder (terminator under an [on_branch] hook,
   instrumented runs, retirement-event boundaries, the tail after a
   mid-block invalidation).

   Hooks can only appear or vanish mid-run from a syscall handler, and
   syscalls terminate translation, so hook presence is loop-invariant
   within a block: uninstrumented runs take the dispatch-free fast loop.
   The block observer (count-driven profiler) is notified once per block
   with the attempted prefix — equivalent to per-instruction feeding. *)
let exec_block_classic t th (bb : bb) limit =
  let len = Array.length bb.bb_ins in
  let n = if limit < len then limit else len in
  let gen = t.decode_generation in
  let attempted = ref 0 in
  let continue_ = ref true in
  (* The interior of a block is straight-line code, so only
     memory/instruction hooks could observe it; a plain branch
     terminator is additionally invisible to all but [on_branch], so
     when that hook is also absent the batch may retire the terminator
     too. *)
  let batchable =
    (match t.hooks.on_ins with Some _ -> false | None -> true)
    && (match t.hooks.on_mem_read with Some _ -> false | None -> true)
    && (match t.hooks.on_mem_write with Some _ -> false | None -> true)
  in
  if batchable then begin
    let tail_ok =
      bb.bb_tail_batchable
      && match t.hooks.on_branch with Some _ -> false | None -> true
    in
    let fuel =
      event_fuel t th
        (let m = if tail_ok then len else len - 1 in
         if n < m then n else m)
    in
    if fuel > 0 then begin
      t.dyn_cost <- 0;
      let r = run_uops t th bb bb.bb_uops fuel in
      let faulted = r < 0 in
      let ok = if faulted then -r - 1 else r in
      (* Micro-ops skip the per-instruction RIP store; only a
         terminating branch (always the block's last micro-op) and the
         fault path write RIP themselves. Repair it here for every
         other exit so the machine state matches per-step execution
         exactly. *)
      if ok > 0 && ok < len && not faulted then
        th.ctx.Context.rip <- Array.unsafe_get bb.bb_next (ok - 1);
      bulk_retire t th bb ok;
      attempted := (if faulted then ok + 1 else ok);
      if faulted || t.stop_requested || gen <> Addr_space.generation t.mem
      then continue_ := false
    end
  end;
  let hook_free =
    match t.hooks.on_ins with Some _ -> false | None -> true
  in
  while !continue_ && !attempted < n do
    let idx = !attempted in
    let pc = Array.unsafe_get bb.bb_pc idx in
    let ins = Array.unsafe_get bb.bb_ins idx in
    if not hook_free then
      (match t.hooks.on_ins with Some f -> f th.tid pc ins | None -> ());
    th.ctx.Context.rip <- Array.unsafe_get bb.bb_next idx;
    incr attempted;
    (match execute t th pc ins (Array.unsafe_get bb.bb_cost idx) with
    | () -> retire t th
    | exception Addr_space.Fault { addr; access } ->
        record_fault th pc ins addr access);
    (match th.state with
    | Runnable -> ()
    | Exited _ | Faulted _ -> continue_ := false);
    if t.stop_requested || gen <> Addr_space.generation t.mem then
      (* A write into a code page (or a map/unmap) invalidated the
         translation mid-block: fall back to the scheduler loop, which
         re-fetches from a fresh decode. *)
      continue_ := false
  done;
  (match t.block_observer with
  | None -> ()
  | Some f ->
      f ~tid:th.tid ~pcs:bb.bb_pc ~n:!attempted
        ~ends_block:(!attempted = len && bb.bb_ends_block));
  !attempted

(* Execute up to [limit] instructions of [th]'s current translated
   block — and, on the fully uninstrumented path, of its chained
   successors: whole blocks hop translation-to-translation along
   direct-branch links without returning to the dispatch loop, with
   per-block bulk retirement and one block-observer call per hop
   (identical granularity to dispatch-driven execution, so BBV slice
   accounting is bit-for-bit unchanged). Indirect branches, faults,
   event-fuel exhaustion, invalidations and stop requests break the
   chain back to dispatch. Returns how many instructions were attempted
   (a faulting fetch or instruction counts as one, matching the
   per-step accounting). *)
let exec_block t th limit =
  let pc0 = th.ctx.Context.rip in
  match fetch_block t pc0 with
  | exception Addr_space.Fault { addr; access = _ } ->
      th.state <- Faulted (Page_fault { addr; access = Exec; pc = pc0 });
      1
  | bb ->
      let chainable =
        t.chain_enabled
        && (match t.hooks.on_ins with Some _ -> false | None -> true)
        && (match t.hooks.on_mem_read with Some _ -> false | None -> true)
        && (match t.hooks.on_mem_write with Some _ -> false | None -> true)
        && (match t.hooks.on_branch with Some _ -> false | None -> true)
      in
      if not chainable then exec_block_classic t th bb limit
      else begin
        let st = t.stats in
        let gen = t.decode_generation in
        let total = ref 0 in
        (* Retirement is deferred: completed-instruction and cycle
           counts accumulate in unboxed locals and flush into the boxed
           int64 thread counters once per call, not once per hop.
           [event_fuel_off] keeps event boundaries exact meanwhile. *)
        let retired_acc = ref 0 in
        let acc_cycles = ref 0 in
        let finished = ref false in
        let cur = ref bb in
        let looping = ref true in
        let observer_none =
          match t.block_observer with None -> true | Some _ -> false
        in
        (* Event fuel is computed once per call: every retirement target
           (timer, mark, counter) and the caller's limit shrink in
           lockstep with the instructions the chain executes, so a
           single budget decremented per hop gives the same bound as
           recomputing the fuel every hop. *)
        let budget = ref (event_fuel t th limit) in
        let iters = ref 0 in
        let part = ref 0 in
        let faulted = ref false in
        let cut = ref false in
        t.dyn_cost <- 0;
        while !looping do
          let b = !cur in
          let len = Array.length b.bb_uops in
          if not b.bb_tail_batchable then begin
            (* Syscall/marker/trap tail (or a translation-window cut):
               only the dispatch path may run it. *)
            looping := false;
            if !total > 0 then st.st_x_indirect <- st.st_x_indirect + 1
          end
          else begin
            let fuel = !budget in
            if fuel < len then begin
              (* Not enough event fuel for a whole-block hop; the
                 dispatch path handles the partial block. *)
              looping := false;
              if !total > 0 then st.st_x_fuel <- st.st_x_fuel + 1
            end
            else begin
              if
                b.bb_chain_extra = -2
                && not (Int64.equal b.bb_succ_taken (-1L))
              then resolve_links t b;
              let links = b.bb_links in
              let linked = Array.length links = 2 in
              let chained =
                b.bb_chain_extra >= 0 && fuel >= len + b.bb_chain_extra
              in
              let mega = if chained then b.bb_mega_chain else b.bb_mega_safe in
              if b.bb_writes_mem then
                t.mega_cw <- Addr_space.code_writes t.mem;
              (* Self-loop turbo: an unobserved block whose hot edge is
                 its own head re-runs the mega back to back, paying the
                 per-hop bookkeeping once per burst. The iteration
                 budget keeps the burst inside the event fuel, and — for
                 the flag-elided variant — additionally reserves the
                 successor kill prefix so the final iteration still
                 meets the elision gate's exit guarantee. Blocks that do
                 not link to themselves skip the budget division: their
                 burst is a single iteration by construction. *)
              let max_iters =
                if
                  observer_none && linked
                  && (Array.unsafe_get links 0 == b
                     || Array.unsafe_get links 1 == b)
                then (if chained then fuel - b.bb_chain_extra else fuel) / len
                else 1
              in
              iters := 0;
              part := 0;
              faulted := false;
              cut := false;
              (try
                 let go = ref true in
                 while !go do
                   mega t th;
                   incr iters;
                   (* [t.took] was just written by the terminator slot;
                      when [max_iters = 1] the short-circuit exits before
                      the (possibly empty) links array is touched. *)
                   if
                     !iters >= max_iters
                     || Array.unsafe_get links t.took != b
                   then go := false
                 done
               with
              | Addr_space.Fault { addr; access } ->
                  let idx = t.mega_idx in
                  th.ctx.Context.rip <- Array.unsafe_get b.bb_next idx;
                  record_fault th
                    (Array.unsafe_get b.bb_pc idx)
                    (Array.unsafe_get b.bb_ins idx)
                    addr access;
                  part := idx;
                  faulted := true;
                  cut := true
              | Smc_break ->
                  part := t.mega_idx;
                  cut := true);
              let ok = (!iters * len) + !part in
              if !part > 0 && !part < len && not !faulted then
                th.ctx.Context.rip <- Array.unsafe_get b.bb_next (!part - 1);
              acc_cycles :=
                !acc_cycles
                + (!iters * Array.unsafe_get b.bb_prefix len)
                + (if !part > 0 then Array.unsafe_get b.bb_prefix !part else 0)
                + t.dyn_cost;
              t.dyn_cost <- 0;
              retired_acc := !retired_acc + ok;
              let attempted = if !faulted then ok + 1 else ok in
              total := !total + attempted;
              budget := !budget - attempted;
              if not observer_none then (
                match t.block_observer with
                | None -> ()
                | Some f ->
                    f ~tid:th.tid ~pcs:b.bb_pc ~n:attempted
                      ~ends_block:(attempted = len && b.bb_ends_block));
              if !faulted then begin
                looping := false;
                finished := true;
                st.st_x_fault <- st.st_x_fault + 1
              end
              else if
                !cut
                (* Between chain hops the generation can only move from a
                   store (no syscalls run here — they are not
                   tail-batchable) or, conceivably, an observer callback;
                   hops with neither skip the re-check, and a
                   store-bearing hop checks right after itself, so a
                   moved generation is never outrun. *)
                || (b.bb_writes_mem || not observer_none)
                   && gen <> Addr_space.generation t.mem
              then begin
                looping := false;
                finished := true;
                st.st_x_inval <- st.st_x_inval + 1
              end
              else if t.stop_requested then begin
                looping := false;
                finished := true;
                st.st_x_stop <- st.st_x_stop + 1
              end
              else begin
                (* A whole-block run of a directly-terminated block left
                   the edge index in [t.took]; indirect or cut tails have
                   no links array and exit to dispatch. *)
                let nxt =
                  if linked then Array.unsafe_get links t.took else dummy_bb
                in
                if nxt == dummy_bb then begin
                  looping := false;
                  st.st_x_indirect <- st.st_x_indirect + 1
                end
                else cur := nxt
              end
            end
          end
        done;
        if !retired_acc > 0 || !acc_cycles > 0 then begin
          let okL = Int64.of_int !retired_acc in
          th.retired <- Int64.add th.retired okL;
          t.retired_total <- Int64.add t.retired_total okL;
          (match t.timer with
          | Some _ -> th.timer_left <- th.timer_left - !retired_acc
          | None -> ());
          th.cycles <- Int64.add th.cycles (Int64.of_int !acc_cycles)
        end;
        if !finished || !total > 0 then !total
        else exec_block_classic t th bb limit
      end

let step t tid =
  let th = thread t tid in
  if th.state <> Runnable then invalid_arg "Machine.step: thread not runnable";
  ignore (exec_block t th 1)

(* Run up to [n] instructions of [tid]; returns how many retired. *)
let run_quantum t tid n limit =
  let th = thread t tid in
  let executed = ref 0 in
  while
    (match th.state with Runnable -> true | Exited _ | Faulted _ -> false)
    && !executed < n
    && (not t.stop_requested)
    && match limit with
       | Some l -> Int64.compare t.retired_total l < 0
       | None -> true
  do
    let room =
      match limit with
      | None -> n - !executed
      | Some l ->
          let left = Int64.sub l t.retired_total in
          let room = n - !executed in
          if Int64.of_int room <= left then room else Int64.to_int left
    in
    executed := !executed + exec_block t th room
  done;
  !executed

let record_slice t tid n =
  if t.record_schedule && n > 0 then begin
    let merged =
      match t.schedule_rev with
      | (tid', n') :: rest when tid' = tid && not t.schedule_cut ->
          (tid, n + n') :: rest
      | rest -> (tid, n) :: rest
    in
    t.schedule_cut <- false;
    t.schedule_rev <- merged
  end

let runnable_tids t =
  let out = ref [] in
  Array.iter (fun th -> if th.state = Runnable then out := th.tid :: !out) t.thread_arr;
  List.rev !out

let run ?max_ins t =
  let continue_ () =
    (not t.stop_requested)
    && (match max_ins with Some l -> total_retired t < l | None -> true)
  in
  (match t.sched with
  | S_free s ->
      let rec loop () =
        if continue_ () then begin
          match runnable_tids t with
          | [] -> ()
          | tids ->
              let tid, quantum =
                match s.pending with
                | Some (tid, left) when (thread t tid).state = Runnable ->
                    s.pending <- None;
                    (tid, left)
                | Some _ | None ->
                    let tid =
                      List.nth tids (Elfie_util.Rng.int s.rng (List.length tids))
                    in
                    let quantum =
                      s.quantum_min
                      + Elfie_util.Rng.int s.rng (s.quantum_max - s.quantum_min + 1)
                    in
                    (* A quantum only exists to interleave threads: with
                       a single runnable thread (and no schedule being
                       recorded, where slice granularity is the output)
                       its size is architecturally invisible, so widen
                       it and spare the dispatch round-trips. The RNG
                       draws above still happen, keeping the stream —
                       and thus any later multi-thread interleaving —
                       identical. *)
                    let quantum =
                      match tids with
                      | [ _ ] when not t.record_schedule ->
                          if quantum < 65536 then 65536 else quantum
                      | _ -> quantum
                    in
                    (tid, quantum)
              in
              let n = run_quantum t tid quantum max_ins in
              record_slice t tid n;
              if n < quantum && (thread t tid).state = Runnable then
                s.pending <- Some (tid, quantum - n);
              loop ()
        end
      in
      loop ()
  | S_recorded slices ->
      let rec loop () =
        if continue_ () then
          match !slices with
          | [] -> ()
          | (tid, n) :: rest ->
              slices := rest;
              let th = thread t tid in
              if th.state = Runnable then begin
                let executed = run_quantum t tid n max_ins in
                ignore executed
              end;
              loop ()
      in
      loop ());
  flush_core_metrics t

(* --- Copy-on-write machine snapshots ----------------------------------- *)

(* Everything a forked machine needs, captured by value: the address
   space is frozen (pointer work only), contexts and the timing model
   are copied, RNGs are duplicated at their exact stream position.
   Derived caches (block cache, memo, soft-TLB, chain links) are NOT
   captured — a fork re-translates lazily, which both keeps the capture
   O(pages + threads) and makes forks trivially safe to run on separate
   domains (translated [bb] records hold mutable link arrays that
   [resolve_links] writes; sharing them across forks would race). *)
type snap_thread = {
  sn_tid : int;
  sn_ctx : Context.t;
  sn_state : thread_state;
  sn_retired : int64;
  sn_cycles : int64;
  sn_counter_target : int64 option;
  sn_counter_fired : bool;
  sn_arm_retired : int64;
  sn_arm_cycles : int64;
  sn_mark_target : int64 option;
  sn_mark_retired : int64 option;
  sn_mark_cycles : int64;
  sn_timer_left : int;
}

type snap_sched =
  | Sn_free of {
      rng : Elfie_util.Rng.t;
      quantum_min : int;
      quantum_max : int;
      pending : (int * int) option;
    }
  | Sn_recorded of (int * int) list

type snapshot = {
  snap_mem : Addr_space.frozen;
  snap_threads : snap_thread array;
  snap_timing : Timing.t;  (* private copy; each fork copies it again *)
  snap_sched : snap_sched;
  snap_timer : (int * int * Elfie_util.Rng.t) option;
  snap_ring0 : int64;
  snap_retired_total : int64;
  snap_record_schedule : bool;
  snap_schedule_rev : (int * int) list;
  snap_schedule_cut : bool;
  snap_group_exit : int option;
  snap_chain_enabled : bool;
}

let snapshot t =
  Metrics.inc m_snap_captures;
  {
    snap_mem = Addr_space.freeze t.mem;
    snap_threads =
      Array.map
        (fun th ->
          {
            sn_tid = th.tid;
            sn_ctx = Context.copy th.ctx;
            sn_state = th.state;
            sn_retired = th.retired;
            sn_cycles = th.cycles;
            sn_counter_target = th.counter_target;
            sn_counter_fired = th.counter_fired;
            sn_arm_retired = th.arm_retired;
            sn_arm_cycles = th.arm_cycles;
            sn_mark_target = th.mark_target;
            sn_mark_retired = th.mark_retired;
            sn_mark_cycles = th.mark_cycles;
            sn_timer_left = th.timer_left;
          })
        t.thread_arr;
    snap_timing = Timing.copy t.timing;
    snap_sched =
      (match t.sched with
      | S_free s ->
          Sn_free
            {
              rng = Elfie_util.Rng.copy s.rng;
              quantum_min = s.quantum_min;
              quantum_max = s.quantum_max;
              pending = s.pending;
            }
      | S_recorded slices -> Sn_recorded !slices);
    snap_timer =
      Option.map (fun (i, c, rng) -> (i, c, Elfie_util.Rng.copy rng)) t.timer;
    snap_ring0 = t.ring0;
    snap_retired_total = t.retired_total;
    snap_record_schedule = t.record_schedule;
    snap_schedule_rev = t.schedule_rev;
    snap_schedule_cut = t.schedule_cut;
    snap_group_exit = t.group_exit_status;
    snap_chain_enabled = t.chain_enabled;
  }

let snapshot_pages snap = Addr_space.frozen_pages snap.snap_mem
let snapshot_page_count snap = Addr_space.frozen_page_count snap.snap_mem

(* Re-derive the machine's nondeterminism sources from [seed] at the
   current point: the scheduler and timer streams restart from
   seed-derived states and any partially consumed quantum is dropped,
   so the continuation depends only on (architectural state, seed).
   Applying the same seed to a fork and to an identically warmed fresh
   machine yields bit-identical continuations — the per-trial variation
   handle for warm-once/fork-many measurement. *)
let reseed t seed =
  let base = Elfie_util.Rng.create seed in
  (match t.sched with
  | S_free s ->
      Elfie_util.Rng.reseed s.rng (Elfie_util.Rng.next64 base);
      s.pending <- None
  | S_recorded _ -> ());
  match t.timer with
  | Some (_, _, rng) -> Elfie_util.Rng.reseed rng (Elfie_util.Rng.next64 base)
  | None -> ()

let clear_stop t = t.stop_requested <- false
let set_stop_on_mark t b = t.stop_on_mark <- b

let fork ?reseed:seed snap =
  Metrics.inc m_snap_forks;
  let thread_arr =
    Array.map
      (fun sn ->
        {
          tid = sn.sn_tid;
          ctx = Context.copy sn.sn_ctx;
          state = sn.sn_state;
          retired = sn.sn_retired;
          cycles = sn.sn_cycles;
          counter_target = sn.sn_counter_target;
          counter_fired = sn.sn_counter_fired;
          arm_retired = sn.sn_arm_retired;
          arm_cycles = sn.sn_arm_cycles;
          mark_target = sn.sn_mark_target;
          mark_retired = sn.sn_mark_retired;
          mark_cycles = sn.sn_mark_cycles;
          timer_left = sn.sn_timer_left;
        })
      snap.snap_threads
  in
  let sched =
    match snap.snap_sched with
    | Sn_free s ->
        S_free
          {
            rng = Elfie_util.Rng.copy s.rng;
            quantum_min = s.quantum_min;
            quantum_max = s.quantum_max;
            pending = s.pending;
          }
    | Sn_recorded slices -> S_recorded (ref slices)
  in
  let m =
    {
      mem = Addr_space.fork snap.snap_mem;
      thread_list = List.rev (Array.to_list thread_arr);
      thread_arr;
      hooks = fresh_hooks ();
      timing = Timing.copy snap.snap_timing;
      sched;
      syscall_handler =
        (fun _ _ -> failwith "Machine: no syscall handler installed");
      syscall_filter = None;
      stop_requested = false;
      ring0 = snap.snap_ring0;
      retired_total = snap.snap_retired_total;
      record_schedule = snap.snap_record_schedule;
      schedule_rev = snap.snap_schedule_rev;
      schedule_cut = snap.snap_schedule_cut;
      block_cache = Hashtbl.create 1024;
      decode_generation = -1;
      timer =
        Option.map
          (fun (i, c, rng) -> (i, c, Elfie_util.Rng.copy rng))
          snap.snap_timer;
      group_exit_status = snap.snap_group_exit;
      exec_cost = 0;
      dyn_cost = 0;
      block_memo_pc = Array.make block_memo_size (-1L);
      block_memo = Array.make block_memo_size dummy_bb;
      block_observer = None;
      chain_enabled = snap.snap_chain_enabled;
      mega_idx = 0;
      mega_cw = 0;
      took = 0;
      live_links = 0;
      stats = fresh_stats ();
      stats_flushed = fresh_stats ();
      cow_flushed = 0;
      stop_on_mark = false;
    }
  in
  (match seed with Some s -> reseed m s | None -> ());
  m
