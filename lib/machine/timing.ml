open Elfie_isa

type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  mispredict_cycles : int;
  base_cycles : Insn.klass -> int;
}

let default_base = function
  | Insn.K_alu -> 1
  | K_load -> 2
  | K_store -> 1
  | K_branch -> 1
  | K_call -> 2
  | K_syscall -> 50
  | K_vector -> 3
  | K_other -> 1

let default =
  {
    l1 = Cache.config ~size_bytes:32_768 ~ways:8 ~line_bytes:64;
    l2 = Cache.config ~size_bytes:262_144 ~ways:8 ~line_bytes:64;
    llc = Cache.config ~size_bytes:8_388_608 ~ways:16 ~line_bytes:64;
    l1_miss_cycles = 10;
    l2_miss_cycles = 25;
    llc_miss_cycles = 150;
    mispredict_cycles = 15;
    base_cycles = default_base;
  }

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  llc : Cache.t;
  predictor : Bytes.t;  (* 2-bit saturating counters *)
}

let predictor_entries = 4096

let create cfg =
  {
    cfg;
    (* Only the LLC's footprint is ever read (working-set reporting), so
       the inner levels skip touched-line tracking on the hot path. *)
    l1 = Cache.create ~track_footprint:false cfg.l1;
    l2 = Cache.create ~track_footprint:false cfg.l2;
    llc = Cache.create cfg.llc;
    predictor = Bytes.make predictor_entries '\002';
  }

(* Independent clone: forked machines must charge the same penalties
   the parent would have, without aliasing predictor or tag state. *)
let copy t =
  {
    cfg = t.cfg;
    l1 = Cache.copy t.l1;
    l2 = Cache.copy t.l2;
    llc = Cache.copy t.llc;
    predictor = Bytes.copy t.predictor;
  }

let ins_cost t k = t.cfg.base_cycles k

let mem_cost t addr =
  if Cache.access t.l1 addr then 0
  else if Cache.access t.l2 addr then t.cfg.l1_miss_cycles
  else if Cache.access t.llc addr then t.cfg.l2_miss_cycles
  else t.cfg.llc_miss_cycles

(* Saturating 2-bit counter transition table, indexed by
   [counter * 2 + taken]: the same update the previous min/max
   formulation computed, as a lookup so the host CPU does not have to
   branch on the (data-dependent, often unpredictable) guest branch
   direction. *)
let bp_next = "\000\001\000\002\001\003\002\003"

let branch_cost t ~pc ~taken =
  (* Bits 1..12 of the pc; [Int64.to_int] keeps bits 0..62 and the mask
     only looks at the low ones, so this equals shifting the int64 —
     without materialising a boxed intermediate. *)
  let ti = Bool.to_int taken in
  let idx = Int64.to_int pc lsr 1 land (predictor_entries - 1) in
  let counter = Char.code (Bytes.unsafe_get t.predictor idx) in
  Bytes.unsafe_set t.predictor idx
    (String.unsafe_get bp_next ((counter lsl 1) lor ti));
  (* Prediction is the counter's high bit; mispredicted iff it differs
     from the actual direction. *)
  ((counter lsr 1) lxor ti) * t.cfg.mispredict_cycles

let perturb t =
  Cache.flush t.l1;
  Cache.flush t.l2;
  Bytes.fill t.predictor 0 predictor_entries '\002'

let llc_footprint_lines t = Cache.footprint_lines t.llc
let l1_misses t = Cache.misses t.l1
let llc_misses t = Cache.misses t.llc
