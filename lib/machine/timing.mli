(** The machine's built-in "hardware" timing model.

    Native ELFie runs need a ground-truth cycles-per-instruction figure,
    like the real hardware performance counters the paper reads with
    [perf]. This model charges a base cost per instruction class plus
    memory-hierarchy penalties (L1D/L2/LLC, LRU) and a bimodal
    branch-predictor penalty. It is deliberately simple: experiments only
    rely on CPI *differences between program phases* being real, which
    cache and branch behaviour provide. *)

type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  mispredict_cycles : int;
  base_cycles : Elfie_isa.Insn.klass -> int;
}

(** Gainestown-flavoured default (the paper's native testbed stand-in). *)
val default : config

type t

val create : config -> t

(** Independent clone (caches + predictor); identical future costs,
    no shared mutable state. Used by machine snapshots. *)
val copy : t -> t

(** Base cost of executing one instruction of a class. *)
val ins_cost : t -> Elfie_isa.Insn.klass -> int

(** Penalty cycles for a data access at [addr]. *)
val mem_cost : t -> int64 -> int

(** Penalty cycles for a conditional branch at [pc] that was [taken],
    updating the predictor. *)
val branch_cost : t -> pc:int64 -> taken:bool -> int

(** Flush caches and predictor state (used to model OS interference in
    full-system simulation). *)
val perturb : t -> unit

val llc_footprint_lines : t -> int
val l1_misses : t -> int
val llc_misses : t -> int
