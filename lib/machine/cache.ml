type config = { size_bytes : int; ways : int; line_bytes : int }

let config ~size_bytes ~ways ~line_bytes =
  if line_bytes land (line_bytes - 1) <> 0 then invalid_arg "Cache: line size";
  if size_bytes mod (ways * line_bytes) <> 0 then invalid_arg "Cache: geometry";
  { size_bytes; ways; line_bytes }

type t = {
  cfg : config;
  sets : int;
  set_mask : int;  (* sets - 1 when sets is a power of two, else 0 *)
  line_bits : int;
  (* Line numbers fit an OCaml [int]: a 64-bit address shifted right by
     the line bits (>= 1) is at most 63 bits. Storing them as immediates
     makes the tag scan pointer-free (an [int64 array] holds boxed
     elements) and the fill a plain store. -1 = invalid (no line number
     is negative). *)
  tags : int array;  (* sets * ways *)
  (* Recency as per-set timestamps: larger = more recent, victim = the
     way with the smallest stamp. Exactly the LRU order the previous
     age-vector encoding maintained (stamps are distinct within a set
     once filled, and the fill-order tie-break matches), but a hit
     updates one slot instead of re-aging the whole set. *)
  lru : int array;  (* stamp per way *)
  stamp : int array;  (* per-set monotone clock *)
  mutable hits : int;
  mutable misses : int;
  (* Most-recently-accessed line. Every access leaves its line resident
     (hit, or miss + fill), so a repeat of this line is a guaranteed hit
     that can skip the tag scan. Skipping its stamp update is
     order-preserving: back-to-back accesses to one line mean nothing
     else in that set moved, so the line already holds the strictly
     largest stamp and every future victim choice is unchanged. *)
  mutable mru_line : int;
  (* First-touch filter: streams hit the same line many times in a row,
     so remembering the last line skips the footprint-set probe on the
     common path without changing the set's contents. *)
  mutable last_line : int;
  track : bool;
  touched : (int, unit) Hashtbl.t;
}

let create ?(track_footprint = true) cfg =
  let sets = cfg.size_bytes / (cfg.ways * cfg.line_bytes) in
  let line_bits =
    let rec go n b = if n = 1 then b else go (n lsr 1) (b + 1) in
    go cfg.line_bytes 0
  in
  {
    cfg;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else 0);
    line_bits;
    tags = Array.make (sets * cfg.ways) (-1);
    lru = Array.make (sets * cfg.ways) 0;
    stamp = Array.make sets 0;
    hits = 0;
    misses = 0;
    mru_line = -1;
    last_line = -1;
    track = track_footprint;
    touched = Hashtbl.create (if track_footprint then 1024 else 1);
  }

let access t addr =
  let line = Int64.to_int (Int64.shift_right_logical addr t.line_bits) in
  if line = t.mru_line then begin
    (* Repeat of the last access: resident by construction, already the
       most recent in its set, already in the footprint set. *)
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.mru_line <- line;
    if t.track && line <> t.last_line then begin
      t.last_line <- line;
      if not (Hashtbl.mem t.touched line) then Hashtbl.replace t.touched line ()
    end;
    let set =
      (* Lines are non-negative, so masking equals [mod] for power-of-two
         set counts (every default geometry). *)
      if t.set_mask <> 0 then line land t.set_mask else line mod t.sets
    in
    let ways = t.cfg.ways in
    let base = set * ways in
    let hit_way = ref (-1) in
    let w = ref 0 in
    while !hit_way < 0 && !w < ways do
      (* A line occupies at most one way (inserted only after a full-scan
         miss), so stopping at the first match is exact. *)
      if Array.unsafe_get t.tags (base + !w) = line then hit_way := !w;
      incr w
    done;
    let now = Array.unsafe_get t.stamp set + 1 in
    Array.unsafe_set t.stamp set now;
    if !hit_way >= 0 then begin
      t.hits <- t.hits + 1;
      Array.unsafe_set t.lru (base + !hit_way) now;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      (* Evict the least recently used way. *)
      let victim = ref 0 in
      for w = 1 to ways - 1 do
        if Array.unsafe_get t.lru (base + w)
           < Array.unsafe_get t.lru (base + !victim)
        then victim := w
      done;
      Array.unsafe_set t.tags (base + !victim) line;
      Array.unsafe_set t.lru (base + !victim) now;
      false
    end
  end

(* Structural duplicate: tags, recency and stats all copied, so the
   clone hits and misses exactly as the original would from here on.
   Cost is proportional to the configured geometry, not to traffic. *)
let copy t =
  {
    t with
    tags = Array.copy t.tags;
    lru = Array.copy t.lru;
    stamp = Array.copy t.stamp;
    touched = Hashtbl.copy t.touched;
  }

let hits t = t.hits
let misses t = t.misses
let footprint_lines t = Hashtbl.length t.touched

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.last_line <- -1;
  Hashtbl.reset t.touched

let flush t =
  t.mru_line <- -1;
  Array.fill t.tags 0 (Array.length t.tags) (-1)
