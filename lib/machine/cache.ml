type config = { size_bytes : int; ways : int; line_bytes : int }

let config ~size_bytes ~ways ~line_bytes =
  if line_bytes land (line_bytes - 1) <> 0 then invalid_arg "Cache: line size";
  if size_bytes mod (ways * line_bytes) <> 0 then invalid_arg "Cache: geometry";
  { size_bytes; ways; line_bytes }

type t = {
  cfg : config;
  sets : int;
  set_mask : int;  (* sets - 1 when sets is a power of two, else 0 *)
  line_bits : int;
  tags : int64 array;  (* sets * ways, -1L = invalid *)
  lru : int array;  (* age per way; 0 = most recent *)
  mutable hits : int;
  mutable misses : int;
  (* First-touch filter: streams hit the same line many times in a row,
     so remembering the last line skips the footprint-set probe on the
     common path without changing the set's contents. *)
  mutable last_line : int64;
  track : bool;
  touched : (int64, unit) Hashtbl.t;
}

let create ?(track_footprint = true) cfg =
  let sets = cfg.size_bytes / (cfg.ways * cfg.line_bytes) in
  let line_bits =
    let rec go n b = if n = 1 then b else go (n lsr 1) (b + 1) in
    go cfg.line_bytes 0
  in
  {
    cfg;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else 0);
    line_bits;
    tags = Array.make (sets * cfg.ways) (-1L);
    lru = Array.make (sets * cfg.ways) 0;
    hits = 0;
    misses = 0;
    last_line = -1L;
    track = track_footprint;
    touched = Hashtbl.create (if track_footprint then 1024 else 1);
  }

let access t addr =
  let line = Int64.shift_right_logical addr t.line_bits in
  if t.track && not (Int64.equal line t.last_line) then begin
    t.last_line <- line;
    if not (Hashtbl.mem t.touched line) then Hashtbl.replace t.touched line ()
  end;
  let set =
    (* Lines are non-negative, so masking equals [Int64.rem] for
       power-of-two set counts (every default geometry). *)
    if t.set_mask <> 0 then Int64.to_int line land t.set_mask
    else Int64.to_int (Int64.rem line (Int64.of_int t.sets))
  in
  let ways = t.cfg.ways in
  let base = set * ways in
  let hit_way = ref (-1) in
  let w = ref 0 in
  while !hit_way < 0 && !w < ways do
    (* A line occupies at most one way (inserted only after a full-scan
       miss), so stopping at the first match is exact. *)
    if Int64.equal (Array.unsafe_get t.tags (base + !w)) line then
      hit_way := !w;
    incr w
  done;
  if !hit_way >= 0 then begin
    t.hits <- t.hits + 1;
    let age = t.lru.(base + !hit_way) in
    for w = 0 to ways - 1 do
      if t.lru.(base + w) < age then t.lru.(base + w) <- t.lru.(base + w) + 1
    done;
    t.lru.(base + !hit_way) <- 0;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict the oldest way. *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if t.lru.(base + w) > t.lru.(base + !victim) then victim := w
    done;
    for w = 0 to ways - 1 do
      t.lru.(base + w) <- t.lru.(base + w) + 1
    done;
    t.tags.(base + !victim) <- line;
    t.lru.(base + !victim) <- 0;
    false
  end

let hits t = t.hits
let misses t = t.misses
let footprint_lines t = Hashtbl.length t.touched

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.last_line <- (-1L);
  Hashtbl.reset t.touched

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1L)
