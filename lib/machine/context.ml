open Elfie_isa

(* The register file lives in a flat byte buffer rather than an
   [int64 array]: int64 array elements are boxed, so every register
   write would allocate (the boxed result) and run the write barrier.
   Bytes accessors move unboxed int64 values directly — a register
   write from the interpreter's hot loop is a plain 8-byte store.
   In-memory order is host-native (the accessor pair is internally
   consistent on any host); serialization fixes little-endian. *)
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

type t = {
  gprs : Bytes.t;
  mutable rip : int64;
  flags : Reg.flags;
  mutable fs_base : int64;
  mutable gs_base : int64;
  xmm : bytes;
}

let gpr_count = 16
let xsave_size = 16 * Reg.xmm_count

let create () =
  {
    gprs = Bytes.make (gpr_count * 8) '\000';
    rip = 0L;
    flags = Reg.fresh_flags ();
    fs_base = 0L;
    gs_base = 0L;
    xmm = Bytes.make xsave_size '\000';
  }

let copy t =
  {
    gprs = Bytes.copy t.gprs;
    rip = t.rip;
    flags = Reg.copy_flags t.flags;
    fs_base = t.fs_base;
    gs_base = t.gs_base;
    xmm = Bytes.copy t.xmm;
  }

let[@inline] geti t i = unsafe_get_64 t.gprs (i lsl 3)
let[@inline] seti t i v = unsafe_set_64 t.gprs (i lsl 3) v
let[@inline] bget g i = unsafe_get_64 g (i lsl 3)
let[@inline] bset g i v = unsafe_set_64 g (i lsl 3) v
let get t r = geti t (Reg.gpr_index r)
let set t r v = seti t (Reg.gpr_index r) v

let xmm_lane t i lane = Bytes.get_int64_le t.xmm ((i * 16) + (lane * 8))
let set_xmm_lane t i lane v = Bytes.set_int64_le t.xmm ((i * 16) + (lane * 8)) v

let xsave t = Bytes.copy t.xmm

let xrstor t img =
  if Bytes.length img < xsave_size then invalid_arg "Context.xrstor: short image";
  Bytes.blit img 0 t.xmm 0 xsave_size

let to_bytes t =
  let w = Elfie_util.Byteio.Writer.create ~capacity:(xsave_size + 160) () in
  for i = 0 to gpr_count - 1 do
    Elfie_util.Byteio.Writer.u64 w (geti t i)
  done;
  Elfie_util.Byteio.Writer.u64 w t.rip;
  Elfie_util.Byteio.Writer.u64 w (Reg.flags_to_word t.flags);
  Elfie_util.Byteio.Writer.u64 w t.fs_base;
  Elfie_util.Byteio.Writer.u64 w t.gs_base;
  Elfie_util.Byteio.Writer.bytes w t.xmm;
  Elfie_util.Byteio.Writer.contents w

let of_bytes b =
  let r = Elfie_util.Byteio.Reader.of_bytes b in
  let t = create () in
  for i = 0 to gpr_count - 1 do
    seti t i (Elfie_util.Byteio.Reader.u64 r)
  done;
  t.rip <- Elfie_util.Byteio.Reader.u64 r;
  let fl = Reg.flags_of_word (Elfie_util.Byteio.Reader.u64 r) in
  t.flags.zf <- fl.zf;
  t.flags.sf <- fl.sf;
  t.flags.cf <- fl.cf;
  t.flags.ovf <- fl.ovf;
  t.fs_base <- Elfie_util.Byteio.Reader.u64 r;
  t.gs_base <- Elfie_util.Byteio.Reader.u64 r;
  xrstor t (Elfie_util.Byteio.Reader.bytes r xsave_size);
  t

let equal a b =
  a.gprs = b.gprs && a.rip = b.rip
  && Reg.flags_to_word a.flags = Reg.flags_to_word b.flags
  && a.fs_base = b.fs_base && a.gs_base = b.gs_base
  && Bytes.equal a.xmm b.xmm

let pp fmt t =
  Format.fprintf fmt "@[<v>rip=0x%Lx flags=0x%Lx fs=0x%Lx gs=0x%Lx@," t.rip
    (Reg.flags_to_word t.flags) t.fs_base t.gs_base;
  List.iter
    (fun r -> Format.fprintf fmt "%s=0x%Lx@," (Reg.gpr_name r) (get t r))
    Reg.all_gprs;
  Format.fprintf fmt "@]"
