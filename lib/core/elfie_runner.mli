(** Running ELFies natively.

    Loads an ELFie through the system loader (so stack randomization and
    the collision failure mode apply), lets its startup code rebuild the
    checkpointed state, and executes the embedded region with a freely
    scheduled machine — the "run it like any Linux binary" path of the
    paper.

    Success criterion is the paper's: the run is {e graceful} when every
    thread's armed retired-instruction counter fired (each thread
    executed its recorded region instruction count and exited), rather
    than the ELFie diverging into an uncaptured page or failing a system
    call.

    Failures are reported both as human-readable strings ([load_error],
    [fault]) and as structured fields ([stack_collision],
    [machine_fault], [runaway], [exit_status]) so supervision layers can
    classify an outcome without matching on message text. *)

type outcome = {
  load_error : string option;
      (** loader refused the image (e.g. stack collision) *)
  stack_collision : bool;
      (** the loader failure was specifically a stack collision *)
  graceful : bool;
      (** every armed thread hit its region instruction count or exited
          cleanly via the application's own exit path, {e and} the
          process terminated — an ELFie looping past its fired region
          counters (the hang class) is not graceful *)
  fault : string option;
      (** first thread fault, if any; a run stopped by the [max_ins] cap
          reports ["runaway: max_ins exceeded"] *)
  machine_fault : (Elfie_machine.Machine.fault * int * int64) option;
      (** the first thread fault, structured: the fault, the faulting
          thread id and its retired instruction count at the fault *)
  runaway : bool;
      (** the machine-wide [max_ins] cap stopped a non-graceful run that
          still had runnable threads (divergence into an endless loop) *)
  exit_status : int option;
      (** first armed thread that exited non-zero before its counter
          fired — the ELFie's own "a system call failed" abort path *)
  app_retired : int64;
      (** instructions retired inside the region (post-arm), all threads *)
  app_cycles : int64;  (** wall-clock proxy for the region (max thread) *)
  region_cpi : float;
  slice_cpi : float;
      (** CPI measured from the warmup mark to exit when the ELFie was
          generated with [warmup_mark]; equals [region_cpi] otherwise *)
  total_retired : int64;  (** including startup/monitor overhead *)
  stdout : string;
  threads : int;
}

(** The exact [fault] message reported when the [max_ins] cap trips. *)
val runaway_fault_message : string

(** [run image] executes an ELFie natively.
    @param seed scheduler seed — vary it across trials for MT variation
    @param fs_init install SYSSTATE proxy files before the run
    @param cwd the sysstate workdir the ELFie is executed in
    @param max_ins safety cap for runaway (diverged) executions
    @param kernel_cost charge ring-0 work, as real hardware would
    @param on_machine called with the machine after loading, before the
    run starts — the supervisor's hook for attaching watchdog
    instrumentation that can stop a wedged run mid-flight *)
val run :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  ?timing:Elfie_machine.Timing.config ->
  ?kernel_cost:bool ->
  ?on_machine:(Elfie_machine.Machine.t -> unit) ->
  Elfie_elf.Image.t ->
  outcome

(** {2 Warm once, fork per trial}

    Repeated-trial region measurement re-executes the same warmup
    before every trial; with copy-on-write machine snapshots the warmup
    runs once. [warm] loads the ELFie and executes it with the given
    seed until its warmup mark fires, then captures the machine
    ({!Elfie_machine.Machine.snapshot} — the address space is frozen
    copy-on-write, nothing is deep-copied) together with the kernel.
    [resume ~seed] forks an independent machine + kernel off that
    capture, re-derives the scheduler/timer RNG streams from [seed]
    (the per-trial variation that distinct full-run seeds used to
    provide) and runs the slice to completion.

    Determinism contract: [resume ~seed w] is bit-identical to warming
    a fresh machine with [w]'s warm seed, calling
    {!Elfie_machine.Machine.reseed} [seed] at the mark stop, and
    continuing — and forks are independent, so trials may fan out
    across pool domains with results identical at any [--jobs].
    Property-tested in [test/test_perf_core.ml].

    [warm] returns [Error outcome] when the run ended without a mark
    firing — image without a warmup boundary, a pre-mark fault, or a
    load failure — with the one-shot outcome, so callers fall back to
    per-trial [run]s. *)

type warmed

val warm :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  ?timing:Elfie_machine.Timing.config ->
  ?kernel_cost:bool ->
  Elfie_elf.Image.t ->
  (warmed, outcome) result

(** [resume ~seed w] measures one trial off the warmed capture.
    [max_ins] caps the machine-wide total retired count, which includes
    the warmup already executed — pass the same value as [warm] for the
    same cap semantics as a single full run. [on_machine] runs against
    the fork after the kernel is installed, before execution. *)
val resume :
  ?max_ins:int64 ->
  ?on_machine:(Elfie_machine.Machine.t -> unit) ->
  seed:int64 ->
  warmed ->
  outcome

(** Mapped pages frozen in the warmed capture (fork cost reporting). *)
val warmed_pages : warmed -> int

val warmed_snapshot : warmed -> Elfie_machine.Machine.snapshot
