(* Native execution of ELFies on the Vkernel machine: the stand-in for
   "just run the binary on Linux". See elfie_runner.mli. *)

open Elfie_machine
open Elfie_kernel

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

type outcome = {
  load_error : string option;
  stack_collision : bool;
  graceful : bool;
  fault : string option;
  machine_fault : (Machine.fault * int * int64) option;
  runaway : bool;
  exit_status : int option;
  app_retired : int64;
  app_cycles : int64;
  region_cpi : float;
  slice_cpi : float;
  total_retired : int64;
  stdout : string;
  threads : int;
}

let failed_outcome ?(stack_collision = false) msg =
  {
    load_error = Some msg;
    stack_collision;
    graceful = false;
    fault = None;
    machine_fault = None;
    runaway = false;
    exit_status = None;
    app_retired = 0L;
    app_cycles = 0L;
    region_cpi = 0.0;
    slice_cpi = 0.0;
    total_retired = 0L;
    stdout = "";
    threads = 0;
  }

let runaway_fault_message = "runaway: max_ins exceeded"

let m_loader_runs =
  Metrics.counter "elfie_loader_runs_total"
    ~help:"ELFie loads attempted by the native runner, by result"

let m_region_instructions =
  Metrics.histogram "elfie_region_instructions"
    ~buckets:[ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 ]
    ~help:"Region instructions retired per graceful native run"

let m_region_cpi =
  Metrics.gauge "elfie_region_cpi"
    ~help:"Region cycles-per-instruction of the most recent native run"

let m_region_threads =
  Metrics.gauge "elfie_region_threads"
    ~help:"Threads alive at the end of the most recent native run"

(* One label value per way a native run can end; also used as the
   closing attr of the runner.region span. *)
let outcome_result o =
  if o.load_error <> None then
    if o.stack_collision then "stack_collision" else "load_error"
  else if o.graceful then "graceful"
  else if o.runaway then "runaway"
  else if o.machine_fault <> None then "fault"
  else "failed"

(* Metrics + span epilogue shared by every path that produced a final
   outcome. *)
let finish sp o =
  let result = outcome_result o in
  Metrics.inc m_loader_runs ~labels:[ ("result", result) ];
  if o.graceful then
    Metrics.observe m_region_instructions (Int64.to_float o.app_retired);
  Metrics.set m_region_cpi o.region_cpi;
  Metrics.set m_region_threads (float_of_int o.threads);
  Trace.end_span sp
    ~attrs:
      [
        ("result", Trace.S result);
        ("retired", Trace.I o.app_retired);
        ("cpi", Trace.F o.region_cpi);
      ];
  o

(* Outcome of a machine whose [run] has returned: graceful-exit
   analysis, fault extraction, region/slice counter windows. Shared by
   the one-shot [run] path and by [resume]d forks. *)
let collect_outcome machine kernel =
  let threads = Machine.threads machine in
      let armed = List.filter (fun th -> th.Machine.counter_target <> None) threads in
      (* Graceful = every armed thread either hit its region instruction
         count or exited cleanly through the application's own exit path
         (a region covering the program's end terminates that way, with
         spin-dependent per-thread counts) — and the process actually
         terminated. An ELFie that loops past its fired region counters
         without exiting (the hang failure class) is not graceful: it is
         whatever watchdog stopped it. *)
      let still_running =
        List.exists (fun th -> th.Machine.state = Machine.Runnable) threads
      in
      let graceful =
        armed <> []
        && (not still_running)
        && List.for_all
             (fun th ->
               th.Machine.counter_fired || th.Machine.state = Machine.Exited 0)
             armed
      in
      let machine_fault =
        List.find_map
          (fun th ->
            match th.Machine.state with
            | Machine.Faulted f -> Some (f, th.Machine.tid, th.Machine.retired)
            | Machine.Runnable | Machine.Exited _ -> None)
          threads
      in
      (* A thread still runnable once [Machine.run] returns means the
         machine-wide instruction cap stopped a run that was never going
         to end on its own — the diverged-and-looping failure mode. *)
      let runaway = (not graceful) && still_running in
      let exit_status =
        List.find_map
          (fun th ->
            match th.Machine.state with
            | Machine.Exited s when s <> 0 && not th.Machine.counter_fired ->
                Some s
            | Machine.Exited _ | Machine.Runnable | Machine.Faulted _ -> None)
          armed
      in
      let fault =
        match machine_fault with
        | Some (f, tid, _) ->
            Some (Format.asprintf "tid %d: %a" tid Machine.pp_fault f)
        | None -> if runaway then Some runaway_fault_message else None
      in
      let app_retired =
        List.fold_left
          (fun acc th -> Int64.add acc (Int64.sub th.Machine.retired th.Machine.arm_retired))
          0L armed
      in
      let app_cycle_delta th = Int64.sub th.Machine.cycles th.Machine.arm_cycles in
      let app_cycles = List.fold_left (fun m th -> max m (app_cycle_delta th)) 0L armed in
      let cycles_sum = List.fold_left (fun a th -> Int64.add a (app_cycle_delta th)) 0L armed in
      (* Slice-only CPI: counters re-read at the warmup mark, when present. *)
      let slice_cpi =
        let marked =
          List.filter_map
            (fun th ->
              match th.Machine.mark_retired with
              | Some mr when Int64.sub th.Machine.retired mr > 0L ->
                  Some
                    ( Int64.sub th.Machine.retired mr,
                      Int64.sub th.Machine.cycles th.Machine.mark_cycles )
              | Some _ | None -> None)
            armed
        in
        match marked with
        | [] ->
            if app_retired = 0L then 0.0
            else Int64.to_float cycles_sum /. Int64.to_float app_retired
        | _ ->
            let ins = List.fold_left (fun a (i, _) -> Int64.add a i) 0L marked in
            let cyc = List.fold_left (fun a (_, c) -> Int64.add a c) 0L marked in
            Int64.to_float cyc /. Int64.to_float ins
      in
      if List.exists (fun th -> th.Machine.mark_retired <> None) armed then
        Trace.instant "runner.warmup" ~attrs:[ ("slice_cpi", Trace.F slice_cpi) ];
      Trace.instant "runner.exit"
        ~attrs:
          [
            ("graceful", Trace.B graceful);
            ( "fault",
              Trace.S (match fault with Some f -> f | None -> "none") );
          ];
      {
        load_error = None;
        stack_collision = false;
        graceful;
        fault;
        machine_fault;
        runaway;
        exit_status;
        app_retired;
        app_cycles;
        region_cpi =
          (if app_retired = 0L then 0.0
           else Int64.to_float cycles_sum /. Int64.to_float app_retired);
        slice_cpi;
        total_retired = Machine.total_retired machine;
        stdout = Vkernel.stdout_contents kernel;
        threads = List.length threads;
      }

(* Machine + kernel construction shared by [run] and [warm]. *)
let build_machine ?timing ~seed ~cwd ~kernel_cost fs_init =
  let machine =
    Machine.create ?timing (Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create
      ~config:{ Vkernel.default_config with seed; initial_cwd = cwd; kernel_cost }
      fs
  in
  Vkernel.install kernel machine;
  if kernel_cost then Machine.set_timer machine ~interval:8192 ~cycles:250 ~seed;
  (machine, kernel)

let run ?(seed = 11L) ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/")
    ?(max_ins = 100_000_000L) ?timing ?(kernel_cost = true)
    ?(on_machine = fun (_ : Machine.t) -> ()) (image : Elfie_elf.Image.t) =
  let machine, kernel = build_machine ?timing ~seed ~cwd ~kernel_cost fs_init in
  let sp = Trace.begin_span "runner.region" ~attrs:[ ("seed", Trace.I seed) ] in
  let load_sp = Trace.begin_span "runner.load" in
  match Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] with
  | exception Loader.Exec_failed msg ->
      Trace.end_span load_sp ~attrs:[ ("error", Trace.S msg) ];
      finish sp (failed_outcome msg)
  | exception Loader.Stack_collision { reserved; needed; stack_top } ->
      Trace.end_span load_sp ~attrs:[ ("error", Trace.S "stack collision") ];
      finish sp
        (failed_outcome ~stack_collision:true
           (Printf.sprintf
              "stack collision: only %d pages below 0x%Lx available (%d needed)"
              reserved stack_top needed))
  | _tid, _layout ->
      Trace.end_span load_sp;
      on_machine machine;
      Elfie_pin.Tools.attach_global_profile machine;
      Machine.run ~max_ins machine;
      finish sp (collect_outcome machine kernel)

(* --- Warm once, fork per trial ----------------------------------------- *)

(* A machine run to its warmup mark and captured copy-on-write: the
   snapshot freezes the address space (no page copies) and the kernel
   is kept so each resumed trial can fork its FD table / heap state.
   Everything per-trial forks off this; the warmed parent itself is
   never resumed. *)
type warmed = { w_snapshot : Machine.snapshot; w_kernel : Vkernel.t }

let warmed_pages w = Machine.snapshot_page_count w.w_snapshot
let warmed_snapshot w = w.w_snapshot

let warm ?(seed = 11L) ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/")
    ?(max_ins = 100_000_000L) ?timing ?(kernel_cost = true)
    (image : Elfie_elf.Image.t) =
  let machine, kernel = build_machine ?timing ~seed ~cwd ~kernel_cost fs_init in
  let sp = Trace.begin_span "runner.warm" ~attrs:[ ("seed", Trace.I seed) ] in
  match Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] with
  | exception Loader.Exec_failed msg ->
      Trace.end_span sp ~attrs:[ ("error", Trace.S msg) ];
      Error (failed_outcome msg)
  | exception Loader.Stack_collision { reserved; needed; stack_top } ->
      Trace.end_span sp ~attrs:[ ("error", Trace.S "stack collision") ];
      Error
        (failed_outcome ~stack_collision:true
           (Printf.sprintf
              "stack collision: only %d pages below 0x%Lx available (%d needed)"
              reserved stack_top needed))
  | _tid, _layout ->
      Machine.set_stop_on_mark machine true;
      Elfie_pin.Tools.attach_global_profile machine;
      Machine.run ~max_ins machine;
      if Machine.stop_requested machine then begin
        (* A warmup mark fired: the machine stopped right after the mark
           instruction, warmed and snapshot-ready. *)
        let snap = Machine.snapshot machine in
        Trace.end_span sp
          ~attrs:
            [
              ("result", Trace.S "warmed");
              ("pages", Trace.I (Int64.of_int (Machine.snapshot_page_count snap)));
            ];
        Ok { w_snapshot = snap; w_kernel = kernel }
      end
      else begin
        (* Ran to completion without a mark (no warmup boundary in the
           image, or it faulted/exited first): report the full outcome
           so the caller can fall back to one-shot runs. *)
        let o = collect_outcome machine kernel in
        Trace.end_span sp ~attrs:[ ("result", Trace.S (outcome_result o)) ];
        Error o
      end

let resume ?(max_ins = 100_000_000L)
    ?(on_machine = fun (_ : Machine.t) -> ()) ~seed w =
  let machine = Machine.fork ~reseed:seed w.w_snapshot in
  let kernel = Vkernel.fork w.w_kernel in
  Vkernel.install kernel machine;
  let sp =
    Trace.begin_span "runner.region"
      ~attrs:[ ("seed", Trace.I seed); ("forked", Trace.B true) ]
  in
  on_machine machine;
  Elfie_pin.Tools.attach_global_profile machine;
  Machine.run ~max_ins machine;
  finish sp (collect_outcome machine kernel)
