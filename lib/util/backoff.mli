(** Shared retry-delay schedule: exponential backoff with a hard
    ceiling and seeded jitter.

    Every layer that retries — the supervisor's crash-class retries, the
    farm daemon client's per-request retries, circuit-breaker cooldowns
    — draws its delays from one policy shape, so retry behavior is
    uniform, capped, and (given a fixed jitter seed) fully
    deterministic: the same {!Elfie_util.Rng.t} stream always yields the
    same delay sequence. *)

type policy = {
  base_s : float;
      (** delay before the first retry (attempt 1); [0.0] disables
          sleeping entirely (and draws nothing from the rng) *)
  factor : float;  (** exponential growth per further retry *)
  max_s : float;
      (** hard ceiling: no computed delay ever exceeds this, jitter
          included *)
  jitter : float;
      (** +- fraction of the raw delay, drawn from the caller's rng;
          [0.0] disables the draw *)
}

(** [base_s = 0.05; factor = 2.0; max_s = 30.0; jitter = 0.25]. *)
val default : policy

(** A policy that never sleeps (base 0). *)
val none : policy

(** [delay policy ?rng ~attempt] is the delay in seconds before
    [attempt] (1-based: attempt 0 is the first try and always waits
    [0.]). The raw schedule is [base_s * factor ^ (attempt - 1)],
    jittered by a factor drawn uniformly from
    [[1 - jitter, 1 + jitter]] when [rng] is given, and clamped to
    [[0, max_s]]. With [base_s <= 0.] the rng is never advanced, so
    policies that disable backoff perturb no seed stream. *)
val delay : ?rng:Rng.t -> policy -> attempt:int -> float

(** [sleep policy ?rng ~attempt] sleeps for {!delay} (no-op when the
    delay is 0). *)
val sleep : ?rng:Rng.t -> policy -> attempt:int -> unit
