(* Work pool on OCaml 5 domains.

   Tasks are drawn from a shared atomic index, so uneven task costs
   balance across workers; results land in a pre-sized array, so output
   order always matches input order regardless of completion order.

   Nested calls never fan out: a [map] issued from inside a worker (for
   example [Perf.whole_program] trials inside a parallel
   [Pipeline.validate] region task) runs sequentially on that worker's
   domain, keeping the total domain count bounded by the outermost
   [jobs] instead of multiplying per level. *)

let default = ref 1
let set_default_jobs n = default := max 1 n
let default_jobs () = !default
let recommended () = Domain.recommended_domain_count ()

(* Domain-local: true while this domain is executing pool tasks. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

exception Task_error of { label : string; index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { label; index; exn } ->
        Some
          (Printf.sprintf "task %s (index %d) failed: %s" label index
             (Printexc.to_string exn))
    | _ -> None)

(* Attach the failing item's identity when the caller labelled its
   tasks; a raw re-raise otherwise (historical behavior). *)
let wrap label i e =
  match label with
  | None -> e
  | Some label -> Task_error { label = label i; index = i; exn = e }

let map ?jobs ?label f xs =
  let n = List.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> !default in
  let jobs = min jobs n in
  if jobs <= 1 || Domain.DLS.get in_worker then
    List.mapi
      (fun i x ->
        match f x with
        | v -> v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Printexc.raise_with_backtrace (wrap label i e) bt)
      xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let work () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue_ := false
        else
          match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set failure None
                   (Some (wrap label i e, bt)))
      done
    in
    let worker () =
      Domain.DLS.set in_worker true;
      work ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the remaining worker; restore its flag so
       later top-level maps still parallelise. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () ->
        work ();
        List.iter Domain.join domains);
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let run ?jobs ?label thunks = map ?jobs ?label (fun f -> f ()) thunks
