type t = { mutable state : int64 }

let create seed = { state = seed }

let next64 t =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let ( ^> ) v n = Int64.logxor v (Int64.shift_right_logical v n) in
  t.state <- t.state +% 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = (z ^> 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^> 27) *% 0x94D049BB133111EBL in
  z ^> 31

let split t = create (next64 t)

(* Same stream position as [t], advancing independently from here on. *)
let copy t = { state = t.state }

let reseed t seed = t.state <- seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Masking to 62 bits keeps the value a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.logand (next64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
