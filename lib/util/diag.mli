(** Structured diagnostics for artifact readers and validators.

    Every failure in the pinball / ELFie artifact pipeline is reported
    as a [t]: a machine-readable error code, the artifact it concerns
    (a file path, a pinball member name, or a logical artifact such as
    ["replay"]), an optional byte offset into the artifact and a human
    message. Readers expose both a [Result]-returning entry point and a
    raising one (raising {!Error}); validators return [t list].

    The code set is the shared contract of the pipeline — see
    "Validation rules & error codes" in [docs/PINBALL_FORMAT.md]. *)

type code =
  | Missing_file  (** a member file of a multi-file artifact is absent *)
  | Bad_magic  (** leading magic number does not match the format *)
  | Truncated  (** the artifact ends before a field it declares *)
  | Count_out_of_range
      (** a count field is negative or larger than the artifact could hold *)
  | Malformed  (** a field violates the format in some other way *)
  | Thread_mismatch
      (** per-thread structures disagree on the number of threads *)
  | Icount_mismatch
      (** recorded instruction counts disagree between members *)
  | Segment_overlap  (** two memory ranges overlap *)
  | Symbol_out_of_bounds  (** a symbol points outside the memory image *)
  | Entry_out_of_bounds  (** the entry point is not in executable memory *)
  | Stack_collision  (** the loader could not reserve a stack *)
  | Divergence  (** replay did not reproduce the recorded execution *)
  | Io_error  (** the underlying filesystem operation failed *)

(** Stable kebab-case name of a code (used in reports and docs). *)
val code_name : code -> string

type t = {
  code : code;
  artifact : string;  (** file path or logical artifact name *)
  offset : int option;  (** byte offset within the artifact, when known *)
  message : string;
}

exception Error of t

val v : ?offset:int -> artifact:string -> code -> string -> t

(** [f code fmt ...] builds a diagnostic with a formatted message. *)
val f : ?offset:int -> artifact:string -> code -> ('a, unit, string, t) format4 -> 'a

(** [fail code fmt ...] raises {!Error} with a formatted message. *)
val fail :
  ?offset:int -> artifact:string -> code -> ('a, unit, string, 'b) format4 -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [is_error code d] is true when [d.code = code]. *)
val is_error : code -> t -> bool

(** [protect fn] runs [fn ()], mapping a raised {!Error} to [Error]. *)
val protect : (unit -> 'a) -> ('a, t) result

(** Unwrap, re-raising {!Error} on [Error]. *)
val get_ok : ('a, t) result -> 'a
