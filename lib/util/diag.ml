type code =
  | Missing_file
  | Bad_magic
  | Truncated
  | Count_out_of_range
  | Malformed
  | Thread_mismatch
  | Icount_mismatch
  | Segment_overlap
  | Symbol_out_of_bounds
  | Entry_out_of_bounds
  | Stack_collision
  | Divergence
  | Io_error

let code_name = function
  | Missing_file -> "missing-file"
  | Bad_magic -> "bad-magic"
  | Truncated -> "truncated"
  | Count_out_of_range -> "count-out-of-range"
  | Malformed -> "malformed"
  | Thread_mismatch -> "thread-mismatch"
  | Icount_mismatch -> "icount-mismatch"
  | Segment_overlap -> "segment-overlap"
  | Symbol_out_of_bounds -> "symbol-out-of-bounds"
  | Entry_out_of_bounds -> "entry-out-of-bounds"
  | Stack_collision -> "stack-collision"
  | Divergence -> "divergence"
  | Io_error -> "io-error"

type t = {
  code : code;
  artifact : string;
  offset : int option;
  message : string;
}

exception Error of t

let v ?offset ~artifact code message = { code; artifact; offset; message }

let f ?offset ~artifact code fmt =
  Printf.ksprintf (fun message -> { code; artifact; offset; message }) fmt

let fail ?offset ~artifact code fmt =
  Printf.ksprintf
    (fun message -> raise (Error { code; artifact; offset; message }))
    fmt

let to_string d =
  Printf.sprintf "[%s] %s%s: %s" (code_name d.code) d.artifact
    (match d.offset with
    | Some off -> Printf.sprintf " (at byte %d)" off
    | None -> "")
    d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let is_error code d = d.code = code

(* Run [fn], turning a raised [Error] into [Result.Error]. *)
let protect fn = match fn () with v -> Ok v | exception Error d -> Result.Error d

let get_ok = function Ok v -> v | Result.Error d -> raise (Error d)

let () =
  Printexc.register_printer (function
    | Error d -> Some ("Diag.Error " ^ to_string d)
    | _ -> None)
