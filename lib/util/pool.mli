(** Minimal work pool on OCaml 5 domains (no dependencies).

    Used to fan independent machine runs — repeated perf trials, region
    measurements, per-benchmark experiment loops — across cores.
    Machines are self-contained mutable values, so each task builds and
    drives its own machine domain-locally; the shared process-global
    observability state ({!Elfie_obs.Metrics}, {!Elfie_obs.Trace},
    {!Elfie_obs.Profile}) and the supervisor journal are mutex-guarded
    and safe to touch from tasks.

    Nested [map]/[run] calls issued from inside a pool task execute
    sequentially on the calling worker's domain, so the total number of
    live domains is bounded by the outermost [jobs]. *)

(** A task exception re-raised with its task named: which item (by
    [label] and input index) failed. Only raised when the [?label]
    argument of {!map}/{!run} is given — batch drivers (the ELFie farm)
    pass it so a failed batch names the job, not just the exception. *)
exception
  Task_error of { label : string; index : int; exn : exn }

(** [map ?jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] tasks concurrently on separate domains. Results are returned
    in input order. The first task exception (if any) is re-raised in
    the caller after remaining workers drain, with its backtrace —
    wrapped in {!Task_error} carrying the item's index and label when
    [label] is given, raw otherwise.

    [jobs] defaults to {!default_jobs}; [jobs <= 1] (and single-element
    or empty lists) degrade to a plain sequential [List.map] (the same
    {!Task_error} wrapping applies). *)
val map : ?jobs:int -> ?label:(int -> string) -> ('a -> 'b) -> 'a list -> 'b list

(** [run ?jobs thunks] is [map ?jobs (fun f -> f ()) thunks]. *)
val run : ?jobs:int -> ?label:(int -> string) -> (unit -> 'a) list -> 'a list

(** Process default for [?jobs], initially [1] (fully sequential).
    Wired to the [--jobs] CLI flag; values [< 1] clamp to [1]. *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int

(** The runtime's recommended domain count for this host (what
    [--jobs 0] resolves to). *)
val recommended : unit -> int
