type policy = {
  base_s : float;
  factor : float;
  max_s : float;
  jitter : float;
}

let default = { base_s = 0.05; factor = 2.0; max_s = 30.0; jitter = 0.25 }
let none = { default with base_s = 0.0 }

let delay ?rng policy ~attempt =
  if attempt <= 0 || policy.base_s <= 0.0 then 0.0
  else begin
    let raw =
      policy.base_s *. (policy.factor ** float_of_int (attempt - 1))
    in
    let jittered =
      match rng with
      | Some rng when policy.jitter > 0.0 ->
          raw *. (1.0 +. (policy.jitter *. ((2.0 *. Rng.float rng) -. 1.0)))
      | Some _ | None -> raw
    in
    Float.max 0.0 (Float.min policy.max_s jittered)
  end

let sleep ?rng policy ~attempt =
  let d = delay ?rng policy ~attempt in
  if d > 0.0 then Unix.sleepf d
