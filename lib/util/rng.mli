(** Deterministic, seedable pseudo-random number generator (splitmix64).

    Used wherever the system needs controlled non-determinism: the
    free-run thread scheduler (run-to-run variation of multi-threaded
    ELFie executions), stack-base randomization in the loader, and
    k-means initialisation. A given seed always yields the same stream,
    so every experiment in this repository is reproducible. *)

type t

val create : int64 -> t

(** Independent child generator; advances the parent. *)
val split : t -> t

(** Duplicate at the current stream position without advancing the
    parent: both generators produce the identical remaining stream.
    Used by machine snapshots so a forked machine replays the exact
    scheduler/timer jitter the parent would have seen. *)
val copy : t -> t

(** Restart the stream from [seed] in place, as if freshly {!create}d.
    Machine snapshots use this to re-derive per-trial variation at a
    fork point. *)
val reseed : t -> int64 -> unit

val next64 : t -> int64

(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Fisher-Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
