type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_ts : float;
  ev_level : level;
  ev_name : string;
  ev_pid : int;
  ev_attrs : Trace.attrs;
}

(* Bounded ring: [ring.(i)] holds the (head - size + i mod cap)-th
   oldest accepted event. All state below is process-global and fed
   from pool worker domains and daemon handler threads, so every
   mutation takes [lock]; the sink write happens inside the same
   critical section so concurrent writers can never interleave (tear)
   JSONL lines. *)
let lock = Mutex.create ()
let default_capacity = 2048
let ring : event option array ref = ref (Array.make default_capacity None)
let head = ref 0 (* next write slot *)
let size = ref 0
let emitted_count = ref 0
let min_level = ref Debug
let sink : out_channel option ref = ref None
let flight = ref (None : string option)

let[@inline] locked f = Mutex.protect lock f

let set_level l = min_level := l
let level () = !min_level

let set_capacity n =
  locked (fun () ->
      let n = max 1 n in
      ring := Array.make n None;
      head := 0;
      size := 0)

let render ev =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\",\"pid\":%d"
       ev.ev_ts
       (level_to_string ev.ev_level)
       (Json.escape ev.ev_name) ev.ev_pid);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":%s" (Json.escape k) (Trace.json_of_value v)))
    ev.ev_attrs;
  Buffer.add_char b '}';
  Buffer.contents b

(* Well-known keys come first; every other member is an attribute. *)
let parse_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok json -> (
      let str key = Option.bind (Json.member key json) Json.to_str in
      let num key = Option.bind (Json.member key json) Json.to_float in
      match (num "ts", Option.bind (str "level") level_of_string, str "event")
      with
      | Some ts, Some lvl, Some name ->
          let attrs =
            match json with
            | Json.Obj members ->
                List.filter_map
                  (fun (k, v) ->
                    match k with
                    | "ts" | "level" | "event" | "pid" -> None
                    | _ ->
                        Some
                          ( k,
                            match v with
                            | Json.Str s -> Trace.S s
                            | Json.Bool b -> Trace.B b
                            | Json.Num f when Float.is_integer f ->
                                Trace.I (Int64.of_float f)
                            | Json.Num f -> Trace.F f
                            | v -> Trace.S (Json.to_string v) ))
                  members
            | _ -> []
          in
          Some
            {
              ev_ts = ts;
              ev_level = lvl;
              ev_name = name;
              ev_pid =
                (match num "pid" with Some p -> int_of_float p | None -> 0);
              ev_attrs = attrs;
            }
      | _ -> None)

let push_unlocked ev =
  incr emitted_count;
  let cap = Array.length !ring in
  !ring.(!head) <- Some ev;
  head := (!head + 1) mod cap;
  if !size < cap then incr size;
  match !sink with
  | None -> ()
  | Some oc ->
      output_string oc (render ev);
      output_char oc '\n';
      flush oc

let log lvl ?(attrs = []) name =
  if level_rank lvl >= level_rank !min_level then
    let ev =
      {
        ev_ts = Unix.gettimeofday ();
        ev_level = lvl;
        ev_name = name;
        ev_pid = Unix.getpid ();
        ev_attrs = attrs;
      }
    in
    locked (fun () -> push_unlocked ev)

let debug ?attrs name = log Debug ?attrs name
let info ?attrs name = log Info ?attrs name
let warn ?attrs name = log Warn ?attrs name
let error ?attrs name = log Error ?attrs name

let recent_unlocked limit =
  let cap = Array.length !ring in
  let n = match limit with Some l -> min l !size | None -> !size in
  List.filter_map Fun.id
    (List.init n (fun i -> !ring.((!head - n + i + (2 * cap)) mod cap)))

let recent ?limit () = locked (fun () -> recent_unlocked limit)
let emitted () = locked (fun () -> !emitted_count)

let to_jsonl ?limit () =
  let evs = recent ?limit () in
  String.concat "" (List.map (fun ev -> render ev ^ "\n") evs)

let set_sink path =
  locked (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      sink :=
        Option.map
          (fun path ->
            open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path)
          path)

let set_flight_path path = flight := path
let flight_path () = !flight

(* The dump may run from a signal handler that interrupted a thread
   already holding [lock]; never block there — fall back to a racy read
   of the ring, which is exactly right for a crash snapshot. *)
let dump ?(reason = "dump") ?path () =
  let target = match path with Some _ -> path | None -> !flight in
  match target with
  | None -> None
  | Some file ->
      let events =
        if Mutex.try_lock lock then (
          let evs = recent_unlocked None in
          Mutex.unlock lock;
          evs)
        else recent_unlocked None
      in
      let trailer =
        {
          ev_ts = Unix.gettimeofday ();
          ev_level = Info;
          ev_name = "flight.dump";
          ev_pid = Unix.getpid ();
          ev_attrs =
            [
              ("reason", Trace.S reason);
              ("events", Trace.I (Int64.of_int (List.length events)));
              ("trace_id", Trace.S (Trace.hex_id (Trace.trace_id ())));
            ];
        }
      in
      (try
         let oc = open_out_bin file in
         List.iter
           (fun ev ->
             output_string oc (render ev);
             output_char oc '\n')
           (events @ [ trailer ]);
         close_out oc
       with Sys_error _ -> ());
      Some file

(* OCaml's [Sys] signal numbers are its own (negative) encoding; name
   the common ones so dump reasons read "signal:sigterm", not
   "signal:-11". *)
let signal_name s =
  if s = Sys.sigint then "sigint"
  else if s = Sys.sigterm then "sigterm"
  else if s = Sys.sighup then "sighup"
  else if s = Sys.sigquit then "sigquit"
  else if s = Sys.sigusr1 then "sigusr1"
  else if s = Sys.sigusr2 then "sigusr2"
  else if s = Sys.sigsegv then "sigsegv"
  else if s = Sys.sigabrt then "sigabrt"
  else if s = Sys.sigpipe then "sigpipe"
  else if s = Sys.sigalrm then "sigalrm"
  else string_of_int s

let install_dump_on_signal signals =
  List.iter
    (fun s ->
      try
        let previous = Sys.signal s Sys.Signal_default in
        let chained sig_no =
          let (_ : string option) =
            dump ~reason:("signal:" ^ signal_name sig_no) ()
          in
          match previous with
          | Sys.Signal_handle f ->
              (* Chain to whatever was installed before (e.g. the
                 daemon's stop-flag handler). *)
              f sig_no
          | Sys.Signal_ignore -> ()
          | Sys.Signal_default ->
              (* Preserve fatal-signal semantics: dump, then die of the
                 same signal. *)
              Sys.set_signal sig_no Sys.Signal_default;
              Unix.kill (Unix.getpid ()) sig_no
        in
        Sys.set_signal s (Sys.Signal_handle chained)
      with Invalid_argument _ | Sys_error _ -> ())
    signals

let reset () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      size := 0;
      emitted_count := 0)
