(** Hot-region profiling: deterministic PC sampling and per-basic-block
    instruction counts.

    The observability twin of the BBV machinery: a profiler fed one
    call per retired instruction (wired into the machine through
    {!Elfie_pin.Tools.profile_tool}) samples the program counter every
    [interval] instructions into a hot-address histogram and charges
    every instruction to its basic block (a block ends at a branch,
    call or syscall). Sampling is count-driven, not timer-driven, so
    the profile of a seeded run is bit-for-bit reproducible — the
    hook-free fast path feeds whole straight-line runs via
    {!note_block} with identical resulting state. A profiler is
    domain-safe: all feeding and reading locks, so one global profiler
    can serve machines on several {!Elfie_util.Pool} domains.

    The {e global} profiler slot is how [--profile] reaches execution:
    when set, {!Elfie_core.Elfie_runner} and the replayer attach it to
    every machine they create. *)

type t

(** [create ()] makes an empty profiler sampling every [interval]
    retired instructions (default 97 — co-prime with common loop
    lengths). Raises [Invalid_argument] if [interval <= 0]. *)
val create : ?interval:int -> unit -> t

val interval : t -> int

(** Feed one retired instruction. [block_end] marks instructions that
    terminate a basic block (branch/call/syscall). *)
val note : t -> tid:int -> pc:int64 -> block_end:bool -> unit

(** Feed [n] back-to-back instructions [pcs.(0 .. n-1)] of one
    straight-line run (the machine's block-observer shape;
    [ends_block] marks a run whose last instruction terminates its
    block). State-for-state equivalent to [n] calls to {!note}, at one
    lock acquisition and one block-count update instead of [n] — the
    shape the hook-free translated-block path reports through
    [Machine.set_block_observer]. *)
val note_block :
  t -> tid:int -> pcs:int64 array -> n:int -> ends_block:bool -> unit

(** Retired instructions seen / PC samples taken. *)
val instructions : t -> int64

val samples : t -> int64

(** Top-[k] sampled PCs, by sample count descending (ties broken by
    ascending address — deterministic). *)
val hot_pcs : ?k:int -> t -> (int64 * int64) list

(** Top-[k] basic blocks by instructions executed. *)
val hot_blocks : ?k:int -> t -> (int64 * int64) list

(** The top-K hot-region report, human-readable. *)
val report : ?k:int -> t -> string

val reset : t -> unit

(** {1 The global profiler} *)

val set_global : t option -> unit
val global : unit -> t option
