(** Merging per-process Chrome [trace_event] files into one timeline.

    Every process in a fleet run ({!Trace.write_chrome}) produces its
    own trace file: timestamps relative to its own tracer epoch, its own
    pid on every event, ["ph":"M"] metadata naming its track, and a
    top-level ["epochUs"] recording the epoch on the absolute Unix
    clock. {!merge} re-bases all files onto the earliest input epoch and
    concatenates their events, yielding one Perfetto-loadable timeline
    where a shard client's request span and the daemon's handler span
    (correlated by trace ID) sit on adjacent named tracks.

    Inputs lacking ["epochUs"] (foreign trace files) are passed through
    unshifted. The merged object keeps the base ["epochUs"] and, when
    all inputs agree, the shared ["traceId"]. *)

(** [merge [(name, contents); ...]] merges parsed trace files; [name] is
    used only in error messages. Fails on unparseable input or a missing
    ["traceEvents"] array. *)
val merge : (string * string) list -> (string, string) result

(** {!merge} over files on disk. *)
val merge_paths : string list -> (string, string) result
