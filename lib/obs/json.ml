type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num v -> fmt_num v
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj members ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v)
             members)
      ^ "}"

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' ->
              Buffer.add_char buf '"';
              advance ()
          | '\\' ->
              Buffer.add_char buf '\\';
              advance ()
          | '/' ->
              Buffer.add_char buf '/';
              advance ()
          | 'b' ->
              Buffer.add_char buf '\b';
              advance ()
          | 'f' ->
              Buffer.add_char buf '\012';
              advance ()
          | 'n' ->
              Buffer.add_char buf '\n';
              advance ()
          | 'r' ->
              Buffer.add_char buf '\r';
              advance ()
          | 't' ->
              Buffer.add_char buf '\t';
              advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 256 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((key, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
