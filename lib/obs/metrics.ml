type kind = Counter | Gauge | Histogram

type family = {
  name : string;
  kind : kind;
  help : string;
  buckets : float array;  (* ascending upper bounds; empty unless histogram *)
}

let kind_of f = f.kind
let name_of f = f.name

type series =
  | Value of float ref
  | Hist of {
      le : float array;
      counts : int array;  (* per-bucket (not cumulative); last = +Inf *)
      mutable sum : float;
      mutable count : int;
    }

type entry = {
  fam : family;
  order : int;
  series : (string, (string * string) list * series) Hashtbl.t;
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let next_order = ref 0

(* The registry is process-global and mutated from worker domains
   (pool-parallel validation and trials), so every entry point that
   touches [registry] or a series takes this lock. Internal helpers are
   [_unlocked]: OCaml mutexes are not reentrant. *)
let lock = Mutex.create ()
let[@inline] locked f = Mutex.protect lock f

let default_buckets =
  [| 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

let register_unlocked fam =
  match Hashtbl.find_opt registry fam.name with
  | Some e ->
      if e.fam.kind <> fam.kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered with another kind"
             fam.name);
      e
  | None ->
      let e = { fam; order = !next_order; series = Hashtbl.create 4 } in
      incr next_order;
      Hashtbl.replace registry fam.name e;
      e

let make kind ?(help = "") ?buckets name =
  let buckets =
    match (kind, buckets) with
    | Histogram, Some bs ->
        let a = Array.of_list bs in
        Array.sort compare a;
        a
    | Histogram, None -> default_buckets
    | (Counter | Gauge), _ -> [||]
  in
  let fam = { name; kind; help; buckets } in
  locked (fun () -> (register_unlocked fam).fam)

let counter ?help name = make Counter ?help name
let gauge ?help name = make Gauge ?help name
let histogram ?help ?buckets name = make Histogram ?help ?buckets name

let canon labels = List.sort compare labels

let key labels =
  String.concat "\x00"
    (List.map (fun (k, v) -> k ^ "\x01" ^ v) (canon labels))

let fresh_series fam =
  match fam.kind with
  | Counter | Gauge -> Value (ref 0.0)
  | Histogram ->
      Hist
        {
          le = fam.buckets;
          counts = Array.make (Array.length fam.buckets + 1) 0;
          sum = 0.0;
          count = 0;
        }

let series_unlocked fam labels =
  let e = register_unlocked fam in
  let k = key labels in
  match Hashtbl.find_opt e.series k with
  | Some (_, s) -> s
  | None ->
      let s = fresh_series fam in
      Hashtbl.replace e.series k (canon labels, s);
      s

let inc ?(labels = []) ?(by = 1.0) fam =
  if fam.kind <> Counter then
    invalid_arg ("Metrics.inc: " ^ fam.name ^ " is not a counter");
  locked (fun () ->
      match series_unlocked fam labels with
      | Value r -> r := !r +. by
      | Hist _ -> ())

let set ?(labels = []) fam v =
  if fam.kind <> Gauge then
    invalid_arg ("Metrics.set: " ^ fam.name ^ " is not a gauge");
  locked (fun () ->
      match series_unlocked fam labels with Value r -> r := v | Hist _ -> ())

let observe ?(labels = []) fam v =
  if fam.kind <> Histogram then
    invalid_arg ("Metrics.observe: " ^ fam.name ^ " is not a histogram");
  locked (fun () ->
      match series_unlocked fam labels with
      | Value _ -> ()
      | Hist h ->
          h.sum <- h.sum +. v;
          h.count <- h.count + 1;
          let n = Array.length h.le in
          let rec find i =
            if i >= n || v <= h.le.(i) then i else find (i + 1)
          in
          let i = find 0 in
          h.counts.(i) <- h.counts.(i) + 1)

let series_value = function
  | Value r -> !r
  | Hist h -> float_of_int h.count

let value ?(labels = []) fam =
  locked (fun () ->
      match Hashtbl.find_opt registry fam.name with
      | None -> 0.0
      | Some e -> (
          match Hashtbl.find_opt e.series (key labels) with
          | None -> 0.0
          | Some (_, s) -> series_value s))

let total_unlocked fam =
  match Hashtbl.find_opt registry fam.name with
  | None -> 0.0
  | Some e ->
      Hashtbl.fold (fun _ (_, s) acc -> acc +. series_value s) e.series 0.0

let total fam = locked (fun () -> total_unlocked fam)

let bucket_snapshot ?(labels = []) fam =
  locked (fun () ->
      match Hashtbl.find_opt registry fam.name with
      | None -> ([], 0.0, 0)
      | Some e -> (
          match Hashtbl.find_opt e.series (key labels) with
          | Some (_, Hist h) ->
              let acc = ref 0 in
              let cum =
                Array.to_list
                  (Array.mapi
                     (fun i c ->
                       acc := !acc + c;
                       ((if i < Array.length h.le then h.le.(i) else infinity),
                        !acc))
                     h.counts)
              in
              (cum, h.sum, h.count)
          | Some (_, Value _) | None -> ([], 0.0, 0)))

let ordered_entries () =
  Hashtbl.fold (fun _ e acc -> e :: acc) registry []
  |> List.sort (fun a b -> compare a.order b.order)

let families () =
  locked (fun () -> List.map (fun e -> e.fam.name) (ordered_entries ()))

(* --- Prometheus text exposition --------------------------------------- *)

let escape_label_value s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let render_labels_le labels le =
  let le_s = if le = infinity then "+Inf" else Printf.sprintf "%g" le in
  render_labels (labels @ [ ("le", le_s) ])

let exposition () =
  locked @@ fun () ->
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      let f = e.fam in
      if f.help <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.name
           (match f.kind with
           | Counter -> "counter"
           | Gauge -> "gauge"
           | Histogram -> "histogram"));
      let rows =
        Hashtbl.fold (fun k lv acc -> (k, lv) :: acc) e.series []
        |> List.sort compare
      in
      List.iter
        (fun (_, (labels, s)) ->
          match s with
          | Value r ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" f.name (render_labels labels)
                   (fmt_num !r))
          | Hist h ->
              let acc = ref 0 in
              Array.iteri
                (fun i c ->
                  acc := !acc + c;
                  let le =
                    if i < Array.length h.le then h.le.(i) else infinity
                  in
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" f.name
                       (render_labels_le labels le)
                       !acc))
                h.counts;
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" f.name (render_labels labels)
                   (fmt_num h.sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.name
                   (render_labels labels) h.count))
        rows)
    (ordered_entries ());
  Buffer.contents b

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(* Parser for the text format [exposition] produces, used by the fleet
   scraper on bytes that crossed the wire. Tolerant: comment lines,
   blank lines and malformed samples are skipped rather than failing the
   whole scrape. *)
let parse_exposition text =
  let parse_labels s =
    (* s is the inside of the braces: k="v",k2="v2" *)
    let n = String.length s in
    let pos = ref 0 in
    let out = ref [] in
    let ok = ref true in
    while !ok && !pos < n do
      let eq =
        match String.index_from_opt s !pos '=' with
        | Some i -> i
        | None ->
            ok := false;
            n
      in
      if !ok && eq + 1 < n && s.[eq + 1] = '"' then begin
        let name = String.trim (String.sub s !pos (eq - !pos)) in
        let b = Buffer.create 16 in
        let i = ref (eq + 2) in
        let closed = ref false in
        while (not !closed) && !i < n do
          (match s.[!i] with
          | '\\' when !i + 1 < n ->
              incr i;
              Buffer.add_char b
                (match s.[!i] with 'n' -> '\n' | c -> c)
          | '"' -> closed := true
          | c -> Buffer.add_char b c);
          incr i
        done;
        if !closed then begin
          out := (name, Buffer.contents b) :: !out;
          pos := !i;
          if !pos < n && s.[!pos] = ',' then incr pos
        end
        else ok := false
      end
      else ok := false
    done;
    if !ok then Some (List.rev !out) else None
  in
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      let name_end =
        let rec go i =
          if i >= String.length line then i
          else
            match line.[i] with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> go (i + 1)
            | _ -> i
        in
        go 0
      in
      if name_end = 0 then None
      else
        let name = String.sub line 0 name_end in
        let rest = String.sub line name_end (String.length line - name_end) in
        let labels, rest =
          if rest <> "" && rest.[0] = '{' then
            match String.index_opt rest '}' with
            | Some close -> (
                match parse_labels (String.sub rest 1 (close - 1)) with
                | Some ls ->
                    ( Some ls,
                      String.sub rest (close + 1)
                        (String.length rest - close - 1) )
                | None -> (None, rest))
            | None -> (None, rest)
          else (Some [], rest)
        in
        match labels with
        | None -> None
        | Some s_labels -> (
            let value_str = String.trim rest in
            let value_str =
              match String.index_opt value_str ' ' with
              | Some sp -> String.sub value_str 0 sp (* drop timestamp *)
              | None -> value_str
            in
            match
              match value_str with
              | "+Inf" -> Some infinity
              | "-Inf" -> Some neg_infinity
              | s -> float_of_string_opt s
            with
            | Some v -> Some { s_name = name; s_labels; s_value = v }
            | None -> None)
  in
  List.filter_map parse_line (String.split_on_char '\n' text)

let sample_value ?(labels = []) name samples =
  let want = canon labels in
  List.find_map
    (fun s ->
      if s.s_name = name && canon s.s_labels = want then Some s.s_value
      else None)
    samples

let summary () =
  locked @@ fun () ->
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-42s %-10s %7s %14s\n" "metric" "kind" "series" "total");
  Buffer.add_string b (String.make 76 '-' ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%-42s %-10s %7d %14s\n" e.fam.name
           (match e.fam.kind with
           | Counter -> "counter"
           | Gauge -> "gauge"
           | Histogram -> "histogram")
           (Hashtbl.length e.series)
           (fmt_num (total_unlocked e.fam))))
    (ordered_entries ());
  Buffer.contents b

let reset () =
  locked (fun () ->
      Hashtbl.reset registry;
      next_order := 0)
