(** Structured event log: leveled, typed-attribute JSONL events in a
    bounded in-memory ring, with an optional file sink and a crash
    flight recorder.

    Where {!Trace} answers "how long did each stage take" and
    {!Metrics} answers "how much of everything happened", [Log] answers
    "what exactly was going on just before things went wrong". Layers
    emit events ({!debug} … {!error}) with the same typed attributes as
    trace spans; each event renders as one self-contained JSON object
    per line (JSONL), so a dump is greppable and machine-parseable with
    no framing beyond newlines.

    The ring is process-global and domain-safe: emission, the ring
    update and the optional sink write happen under one mutex, so
    concurrent writers from the {!Elfie_util.Pool} domains or daemon
    handler threads never tear a line. The ring is bounded (default
    2048 events, {!set_capacity}); old events fall off silently —
    {!emitted} counts everything ever accepted.

    {b Flight recorder.} {!set_flight_path} names a file; {!dump}
    writes the ring there as JSONL plus a [flight.dump] trailer event
    (reason, event count, trace ID). The shard client dumps on every
    degrade-to-recompute, and {!install_dump_on_signal} arranges a dump
    on fatal signals — chaining to the previously installed handler, or
    re-raising the signal after the dump when the previous disposition
    was the default (so a [SIGTERM]'d daemon still dies of SIGTERM,
    leaving its last moments on disk). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** One accepted event. [ev_ts] is absolute Unix time in seconds. *)
type event = {
  ev_ts : float;
  ev_level : level;
  ev_name : string;
  ev_pid : int;
  ev_attrs : Trace.attrs;
}

(** Minimum accepted level (default [Debug]); events below it are
    discarded before touching the ring or sink. *)
val set_level : level -> unit

val level : unit -> level

(** Resize the ring (default 2048); drops buffered events. *)
val set_capacity : int -> unit

val log : level -> ?attrs:Trace.attrs -> string -> unit
val debug : ?attrs:Trace.attrs -> string -> unit
val info : ?attrs:Trace.attrs -> string -> unit
val warn : ?attrs:Trace.attrs -> string -> unit
val error : ?attrs:Trace.attrs -> string -> unit

(** Buffered events, oldest first; [limit] keeps only the newest
    [limit]. *)
val recent : ?limit:int -> unit -> event list

(** Events accepted since the last {!reset}, including those the ring
    has since dropped. *)
val emitted : unit -> int

(** The ring as JSONL (one {!render}ed event per line). *)
val to_jsonl : ?limit:int -> unit -> string

(** Render one event as its JSONL line (no trailing newline). *)
val render : event -> string

(** Parse one JSONL line back; [None] if it is not a log line. Unknown
    members become attributes. *)
val parse_line : string -> event option

(** Also append every accepted event to this file (line-buffered,
    created if needed); [None] closes the sink. *)
val set_sink : string option -> unit

(** Where {!dump} writes when called without [path]. *)
val set_flight_path : string option -> unit

val flight_path : unit -> string option

(** Write the ring (plus a [flight.dump] trailer naming [reason]) to
    [path], or to the configured flight path; [None] when neither is
    set. Never raises and never blocks — safe from signal handlers. *)
val dump : ?reason:string -> ?path:string -> unit -> string option

(** Dump on each of the given signals ([Sys.sigterm] etc.), then chain
    to the previous handler (or re-raise the signal if the previous
    disposition was default). *)
val install_dump_on_signal : int list -> unit

(** Human name of an OCaml [Sys] signal number ([Sys.sigterm] →
    ["sigterm"]); the raw number for unrecognised signals. *)
val signal_name : int -> string

(** Clear the ring and counters (sink and flight path are kept). *)
val reset : unit -> unit
