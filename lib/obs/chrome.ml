(* Merging per-process Chrome trace files into one timeline.

   Each process writes its own [Trace.to_chrome] file with timestamps
   relative to its own tracer epoch; the top-level ["epochUs"] member
   records that epoch on the absolute Unix clock. Merging re-bases every
   file onto the earliest epoch among the inputs, so spans from a shard
   client and the daemons it talked to line up on one wall clock, while
   the per-file ["ph":"M"] metadata keeps each process on its own named
   track. *)

type input = { in_name : string; in_json : Json.t }

let parse_input (name, contents) =
  match Json.parse contents with
  | Error msg -> Error (Printf.sprintf "%s: %s" name msg)
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list with
      | None -> Error (Printf.sprintf "%s: no traceEvents array" name)
      | Some _ -> Ok { in_name = name; in_json = json })

let epoch_us input =
  Option.bind (Json.member "epochUs" input.in_json) Json.to_float

let events input =
  Option.value ~default:[]
    (Option.bind (Json.member "traceEvents" input.in_json) Json.to_list)

let trace_id input =
  Option.bind (Json.member "traceId" input.in_json) Json.to_str

(* Shift an event's "ts" by [shift] microseconds; events without a
   numeric ts (the "ph":"M" metadata records) pass through untouched. *)
let shift_event shift ev =
  match ev with
  | Json.Obj members when shift <> 0.0 ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "ts", Json.Num ts -> (k, Json.Num (ts +. shift))
             | _ -> (k, v))
           members)
  | ev -> ev

let merge inputs =
  if inputs = [] then Error "no input traces"
  else
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
          match parse_input x with
          | Error _ as e -> e
          | Ok input -> collect (input :: acc) rest)
    in
    match collect [] inputs with
    | Error _ as e -> e
    | Ok parsed ->
        let epochs = List.filter_map epoch_us parsed in
        let base = match epochs with [] -> 0.0 | e :: es -> List.fold_left min e es in
        let b = Buffer.create 8192 in
        Buffer.add_string b "{\"traceEvents\":[";
        let first = ref true in
        List.iter
          (fun input ->
            let shift =
              match epoch_us input with Some e -> e -. base | None -> 0.0
            in
            List.iter
              (fun ev ->
                if !first then first := false else Buffer.add_char b ',';
                Buffer.add_string b (Json.to_string (shift_event shift ev)))
              (events input))
          parsed;
        Buffer.add_string b "],\"displayTimeUnit\":\"ms\"";
        if epochs <> [] then
          Buffer.add_string b (Printf.sprintf ",\"epochUs\":%.3f" base);
        (* A single shared trace ID survives the merge; disagreeing
           inputs (independent sessions merged for side-by-side viewing)
           just drop the field. *)
        (match List.filter_map trace_id parsed with
        | id :: rest when List.for_all (String.equal id) rest ->
            Buffer.add_string b (Printf.sprintf ",\"traceId\":\"%s\"" id)
        | _ -> ());
        Buffer.add_char b '}';
        Ok (Buffer.contents b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let merge_paths paths =
  match
    List.map
      (fun path ->
        match read_file path with
        | contents -> Ok (path, contents)
        | exception Sys_error msg -> Error msg)
      paths
  with
  | pairs -> (
      let rec firsts acc = function
        | [] -> Ok (List.rev acc)
        | Ok p :: rest -> firsts (p :: acc) rest
        | Error msg :: _ -> Error msg
      in
      match firsts [] pairs with
      | Error _ as e -> e
      | Ok pairs -> merge pairs)
