type t = {
  itv : int;
  mutable countdown : int;
  mutable ins : int64;
  mutable nsamples : int64;
  pcs : (int64, int64) Hashtbl.t;
  blocks : (int64, int64) Hashtbl.t;
  mutable cur_block : int64 array;  (* per-tid current block head *)
  mutable at_boundary : bool array;
  (* One profiler (the global slot) may be fed by machines running on
     several pool domains at once; every state mutation and reader
     locks. *)
  lock : Mutex.t;
}

let create ?(interval = 97) () =
  if interval <= 0 then invalid_arg "Profile.create: interval must be positive";
  {
    itv = interval;
    countdown = interval;
    ins = 0L;
    nsamples = 0L;
    pcs = Hashtbl.create 1024;
    blocks = Hashtbl.create 1024;
    cur_block = Array.make 8 0L;
    at_boundary = Array.make 8 true;
    lock = Mutex.create ();
  }

let interval t = t.itv
let[@inline] locked t f = Mutex.protect t.lock f

let ensure_tid t tid =
  let n = Array.length t.cur_block in
  if tid >= n then begin
    let cur = Array.make (tid + 4) 0L in
    let bnd = Array.make (tid + 4) true in
    Array.blit t.cur_block 0 cur 0 n;
    Array.blit t.at_boundary 0 bnd 0 n;
    t.cur_block <- cur;
    t.at_boundary <- bnd
  end

let bump tbl key =
  Hashtbl.replace tbl key
    (Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt tbl key)))

let bump_by tbl key n =
  Hashtbl.replace tbl key
    (Int64.add n (Option.value ~default:0L (Hashtbl.find_opt tbl key)))

let note t ~tid ~pc ~block_end =
  locked t @@ fun () ->
  ensure_tid t tid;
  if t.at_boundary.(tid) then begin
    t.cur_block.(tid) <- pc;
    t.at_boundary.(tid) <- false
  end;
  bump t.blocks t.cur_block.(tid);
  if block_end then t.at_boundary.(tid) <- true;
  t.ins <- Int64.add t.ins 1L;
  t.countdown <- t.countdown - 1;
  if t.countdown = 0 then begin
    t.countdown <- t.itv;
    t.nsamples <- Int64.add t.nsamples 1L;
    bump t.pcs pc
  end

(* Feed a run of [n] instructions [pcs.(0 .. n-1)] executed back to
   back — the machine's block-observer shape. Equivalent, state for
   state, to calling [note] on each pc in order: the run is
   straight-line (a boundary can only fall on its last instruction), so
   all [n] instructions charge to one block head, and the countdown
   sampler fires at the same indices per-instruction feeding would. *)
let note_block t ~tid ~pcs ~n ~ends_block =
  if n > 0 then
    locked t @@ fun () ->
    ensure_tid t tid;
    if t.at_boundary.(tid) then begin
      t.cur_block.(tid) <- Array.unsafe_get pcs 0;
      t.at_boundary.(tid) <- false
    end;
    bump_by t.blocks t.cur_block.(tid) (Int64.of_int n);
    if ends_block then t.at_boundary.(tid) <- true;
    t.ins <- Int64.add t.ins (Int64.of_int n);
    (* Sample indices are countdown-1, countdown-1+itv, ... *)
    let i = ref (t.countdown - 1) in
    if !i >= n then t.countdown <- t.countdown - n
    else begin
      while !i < n do
        t.nsamples <- Int64.add t.nsamples 1L;
        bump t.pcs (Array.unsafe_get pcs !i);
        i := !i + t.itv
      done;
      let last = !i - t.itv in
      t.countdown <- t.itv - (n - 1 - last)
    end

let instructions t = locked t (fun () -> t.ins)
let samples t = locked t (fun () -> t.nsamples)

let top ?(k = 10) tbl =
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) tbl []
  |> List.sort (fun (pa, na) (pb, nb) ->
         match Int64.compare nb na with
         | 0 -> Int64.unsigned_compare pa pb
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let hot_pcs ?k t = locked t (fun () -> top ?k t.pcs)
let hot_blocks ?k t = locked t (fun () -> top ?k t.blocks)

let pct part whole =
  if whole = 0L then 0.0
  else 100.0 *. Int64.to_float part /. Int64.to_float whole

let report ?(k = 10) t =
  locked t @@ fun () ->
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "hot regions: %Ld sample(s) @ every %d ins, %Ld instruction(s), %d \
        distinct pc(s)\n"
       t.nsamples t.itv t.ins (Hashtbl.length t.pcs));
  List.iter
    (fun (pc, n) ->
      Buffer.add_string b
        (Printf.sprintf "  0x%-12Lx %8Ld sample(s)  %5.1f%%\n" pc n
           (pct n t.nsamples)))
    (top ~k t.pcs);
  Buffer.add_string b
    (Printf.sprintf "hot blocks (top %d of %d, by instructions):\n" k
       (Hashtbl.length t.blocks));
  List.iter
    (fun (pc, n) ->
      Buffer.add_string b
        (Printf.sprintf "  0x%-12Lx %8Ld ins        %5.1f%%\n" pc n
           (pct n t.ins)))
    (top ~k t.blocks);
  Buffer.contents b

let reset t =
  locked t @@ fun () ->
  t.countdown <- t.itv;
  t.ins <- 0L;
  t.nsamples <- 0L;
  Hashtbl.reset t.pcs;
  Hashtbl.reset t.blocks;
  Array.fill t.cur_block 0 (Array.length t.cur_block) 0L;
  Array.fill t.at_boundary 0 (Array.length t.at_boundary) true

let global_slot : t option ref = ref None
let set_global p = global_slot := p
let global () = !global_slot
