type t = {
  itv : int;
  mutable countdown : int;
  mutable ins : int64;
  mutable nsamples : int64;
  pcs : (int64, int64) Hashtbl.t;
  blocks : (int64, int64) Hashtbl.t;
  mutable cur_block : int64 array;  (* per-tid current block head *)
  mutable at_boundary : bool array;
}

let create ?(interval = 97) () =
  if interval <= 0 then invalid_arg "Profile.create: interval must be positive";
  {
    itv = interval;
    countdown = interval;
    ins = 0L;
    nsamples = 0L;
    pcs = Hashtbl.create 1024;
    blocks = Hashtbl.create 1024;
    cur_block = Array.make 8 0L;
    at_boundary = Array.make 8 true;
  }

let interval t = t.itv

let ensure_tid t tid =
  let n = Array.length t.cur_block in
  if tid >= n then begin
    let cur = Array.make (tid + 4) 0L in
    let bnd = Array.make (tid + 4) true in
    Array.blit t.cur_block 0 cur 0 n;
    Array.blit t.at_boundary 0 bnd 0 n;
    t.cur_block <- cur;
    t.at_boundary <- bnd
  end

let bump tbl key =
  Hashtbl.replace tbl key
    (Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt tbl key)))

let note t ~tid ~pc ~block_end =
  ensure_tid t tid;
  if t.at_boundary.(tid) then begin
    t.cur_block.(tid) <- pc;
    t.at_boundary.(tid) <- false
  end;
  bump t.blocks t.cur_block.(tid);
  if block_end then t.at_boundary.(tid) <- true;
  t.ins <- Int64.add t.ins 1L;
  t.countdown <- t.countdown - 1;
  if t.countdown = 0 then begin
    t.countdown <- t.itv;
    t.nsamples <- Int64.add t.nsamples 1L;
    bump t.pcs pc
  end

let instructions t = t.ins
let samples t = t.nsamples

let top ?(k = 10) tbl =
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) tbl []
  |> List.sort (fun (pa, na) (pb, nb) ->
         match Int64.compare nb na with
         | 0 -> Int64.unsigned_compare pa pb
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let hot_pcs ?k t = top ?k t.pcs
let hot_blocks ?k t = top ?k t.blocks

let pct part whole =
  if whole = 0L then 0.0
  else 100.0 *. Int64.to_float part /. Int64.to_float whole

let report ?(k = 10) t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "hot regions: %Ld sample(s) @ every %d ins, %Ld instruction(s), %d \
        distinct pc(s)\n"
       t.nsamples t.itv t.ins (Hashtbl.length t.pcs));
  List.iter
    (fun (pc, n) ->
      Buffer.add_string b
        (Printf.sprintf "  0x%-12Lx %8Ld sample(s)  %5.1f%%\n" pc n
           (pct n t.nsamples)))
    (hot_pcs ~k t);
  Buffer.add_string b
    (Printf.sprintf "hot blocks (top %d of %d, by instructions):\n" k
       (Hashtbl.length t.blocks));
  List.iter
    (fun (pc, n) ->
      Buffer.add_string b
        (Printf.sprintf "  0x%-12Lx %8Ld ins        %5.1f%%\n" pc n
           (pct n t.ins)))
    (hot_blocks ~k t);
  Buffer.contents b

let reset t =
  t.countdown <- t.itv;
  t.ins <- 0L;
  t.nsamples <- 0L;
  Hashtbl.reset t.pcs;
  Hashtbl.reset t.blocks;
  Array.fill t.cur_block 0 (Array.length t.cur_block) 0L;
  Array.fill t.at_boundary 0 (Array.length t.at_boundary) true

let global_slot : t option ref = ref None
let set_global p = global_slot := p
let global () = !global_slot
