(** Exporter plumbing for the [--trace]/[--metrics]/[--profile[=N]]
    CLI flags.

    [with_reporting ?trace ?metrics ?profile f]:

    - when [profile] is [Some interval], installs a fresh global
      profiler ({!Profile.set_global}) that the runner and replayer
      attach to every machine they create;
    - runs [f ()];
    - then — even if [f] raised — writes the Chrome trace to [trace],
      the Prometheus exposition to [metrics] (followed by the metric
      summary table on [out]), and prints the profiler's top-K
      hot-region report. *)
val with_reporting :
  ?trace:string ->
  ?metrics:string ->
  ?profile:int ->
  ?out:out_channel ->
  (unit -> 'a) ->
  'a
