(** A minimal JSON value type, parser and printer.

    Just enough JSON for the observability layer's own formats: the
    Chrome [trace_event] files {!Trace.to_chrome} writes (parsed back by
    [elfied trace-merge]), and the one-object-per-line event log
    {!Log} emits. Numbers are floats, [\u] escapes above U+00FF decode
    to ['?']; this is not a general-purpose JSON library and is not
    meant to be one. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Escape a string for inclusion inside JSON quotes (no surrounding
    quotes added). *)
val escape : string -> string

(** Render compactly (no whitespace). Object member order is
    preserved. *)
val to_string : t -> string

(** Parse one complete JSON value; trailing bytes are an error. *)
val parse : string -> (t, string) result

(** {1 Accessors} — [None] on a type mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
