type value = S of string | I of int64 | F of float | B of bool
type attrs = (string * value) list

type event =
  | Span of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      seq : int;
      attrs : attrs;
    }
  | Instant of {
      name : string; ts : float; depth : int; seq : int; attrs : attrs;
    }

let event_name = function Span { name; _ } | Instant { name; _ } -> name
let event_attrs = function Span { attrs; _ } | Instant { attrs; _ } -> attrs
let attr ev key = List.assoc_opt key (event_attrs ev)

type span = {
  sp_name : string;
  sp_ts : float;
  sp_seq : int;
  sp_depth : int;
  mutable sp_attrs : attrs;
  mutable sp_live : bool;
}

let enabled_flag = ref true
let capacity = ref 65536
let epoch = ref (Unix.gettimeofday ())
let seq = ref 0
let depth = ref 0

(* Newest-first; once full, later events are counted, not stored. *)
let buf : event list ref = ref []
let buf_len = ref 0
let dropped_count = ref 0
let emitted_count = ref 0

(* The ring state above is process-global and fed from pool worker
   domains, so every mutation and every reader snapshot takes this
   lock. Span records themselves are owned by the domain that opened
   them; only buffer/sequence state is shared. *)
let lock = Mutex.create ()
let[@inline] locked f = Mutex.protect lock f

(* --- correlation identifiers ------------------------------------------ *)

(* The process trace ID correlates spans across the processes of one
   fleet request: a shard client stamps it (plus a fresh span ID) into
   every wire frame, the daemon tags its handler span with both, and
   `elfied trace-merge` joins them back up. Derived lazily from pid and
   wall clock so concurrent processes draw distinct IDs. *)
let trace_id_cell = ref 0L
let span_id_counter = ref 0L

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fresh_trace_id () =
  let bits =
    Int64.logxor
      (Int64.of_float (Unix.gettimeofday () *. 1e6))
      (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40)
  in
  match mix64 bits with 0L -> 1L | id -> id

let set_trace_id id = trace_id_cell := id

let trace_id_unlocked () =
  if !trace_id_cell = 0L then trace_id_cell := fresh_trace_id ();
  !trace_id_cell

let trace_id () = locked trace_id_unlocked

let fresh_span_id () =
  locked (fun () ->
      span_id_counter := Int64.add !span_id_counter 1L;
      mix64 (Int64.logxor (trace_id_unlocked ()) !span_id_counter))

let hex_id id = Printf.sprintf "%016Lx" id

(* Perfetto labels the merged per-process tracks with this name. *)
let process_label_cell = ref ""
let set_process_label name = process_label_cell := name

let process_label () =
  if !process_label_cell <> "" then !process_label_cell
  else Filename.basename Sys.executable_name

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
let set_capacity n = locked (fun () -> capacity := max 1 n)

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let push_unlocked ev =
  incr emitted_count;
  if !buf_len >= !capacity then incr dropped_count
  else begin
    buf := ev :: !buf;
    incr buf_len
  end

let dummy_span =
  { sp_name = ""; sp_ts = 0.0; sp_seq = 0; sp_depth = 0; sp_attrs = [];
    sp_live = false }

let begin_span ?(attrs = []) name =
  if not !enabled_flag then dummy_span
  else
    locked (fun () ->
        incr seq;
        let sp =
          { sp_name = name; sp_ts = now_us (); sp_seq = !seq;
            sp_depth = !depth; sp_attrs = attrs; sp_live = true }
        in
        incr depth;
        sp)

let add_attr sp key v = if sp.sp_live then sp.sp_attrs <- sp.sp_attrs @ [ (key, v) ]

let end_span ?(attrs = []) sp =
  if sp.sp_live then begin
    sp.sp_live <- false;
    locked (fun () ->
        depth := max 0 (!depth - 1);
        push_unlocked
          (Span
             {
               name = sp.sp_name;
               ts = sp.sp_ts;
               dur = Float.max 0.0 (now_us () -. sp.sp_ts);
               depth = sp.sp_depth;
               seq = sp.sp_seq;
               attrs = sp.sp_attrs @ attrs;
             }))
  end

let with_span ?attrs name f =
  let sp = begin_span ?attrs name in
  match f sp with
  | v ->
      end_span sp;
      v
  | exception exn ->
      end_span sp ~attrs:[ ("error", S (Printexc.to_string exn)) ];
      raise exn

let instant ?(attrs = []) name =
  if !enabled_flag then
    locked (fun () ->
        incr seq;
        push_unlocked
          (Instant { name; ts = now_us (); depth = !depth; seq = !seq; attrs }))

let events () = locked (fun () -> List.rev !buf)
let emitted () = locked (fun () -> !emitted_count)
let dropped () = locked (fun () -> !dropped_count)

let span_names () =
  List.filter_map
    (function Span { name; _ } -> Some name | Instant _ -> None)
    (events ())

let reset () =
  locked (fun () ->
      buf := [];
      buf_len := 0;
      dropped_count := 0;
      emitted_count := 0;
      seq := 0;
      depth := 0;
      epoch := Unix.gettimeofday ())

(* --- Chrome trace_event export --------------------------------------- *)

let json_escape = Json.escape

let json_of_value = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> Int64.to_string i
  | F f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f
      else Printf.sprintf "\"%h\"" f
  | B b -> if b then "true" else "false"

let json_args attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v))
         attrs)
  ^ "}"

let chrome_event ~pid = function
  | Span { name; ts; dur; attrs; _ } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":1,\"args\":%s}"
        (json_escape name) ts dur pid (json_args attrs)
  | Instant { name; ts; attrs; _ } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\"pid\":%d,\"tid\":1,\"args\":%s}"
        (json_escape name) ts pid (json_args attrs)

(* "ph":"M" metadata names the per-process and per-thread tracks, so a
   merged multi-process trace reads as named lanes in Perfetto instead
   of bare numeric pids. *)
let chrome_metadata ~pid ~label =
  [
    Printf.sprintf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
      pid (json_escape label);
    Printf.sprintf
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":\"main\"}}"
      pid;
  ]

let to_chrome ?pid ?label () =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let label = match label with Some l -> l | None -> process_label () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b ',')
    (chrome_metadata ~pid ~label);
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (chrome_event ~pid ev))
    (events ());
  (* The absolute epoch (us since the Unix epoch) lets trace-merge align
     files whose ts fields are each relative to their own process
     start. *)
  Buffer.add_string b
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"epochUs\":%.3f,\"traceId\":\"%s\"}"
       (!epoch *. 1e6)
       (hex_id (trace_id ())));
  Buffer.contents b

let write_chrome ?pid ?label path =
  let oc = open_out_bin path in
  output_string oc (to_chrome ?pid ?label ());
  output_char oc '\n';
  close_out oc

(* --- Human-readable tree ---------------------------------------------- *)

let string_of_value = function
  | S s -> s
  | I i -> Int64.to_string i
  | F f -> Printf.sprintf "%.4g" f
  | B b -> string_of_bool b

let pp_attrs fmt attrs =
  if attrs <> [] then
    Format.fprintf fmt " (%s)"
      (String.concat ", "
         (List.map (fun (k, v) -> k ^ "=" ^ string_of_value v) attrs))

let pp_tree fmt () =
  let by_seq =
    List.sort
      (fun a b ->
        let s = function Span { seq; _ } | Instant { seq; _ } -> seq in
        compare (s a) (s b))
      (events ())
  in
  List.iter
    (fun ev ->
      match ev with
      | Span { name; dur; depth; attrs; _ } ->
          Format.fprintf fmt "%s%s %.3fms%a@." (String.make (2 * depth) ' ')
            name (dur /. 1000.0) pp_attrs attrs
      | Instant { name; depth; attrs; _ } ->
          Format.fprintf fmt "%s- %s%a@." (String.make (2 * depth) ' ') name
            pp_attrs attrs)
    by_seq;
  if !dropped_count > 0 then
    Format.fprintf fmt "(%d event(s) dropped past the %d-event buffer)@."
      !dropped_count !capacity

let tree () = Format.asprintf "%a" pp_tree ()
