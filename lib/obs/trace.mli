(** Structured tracing: lightweight spans and instant events.

    The process-wide tracer buffers events in memory; execution layers
    emit spans (a named interval with key/value attributes) and instant
    events at well-known points — pipeline stages, supervisor attempts,
    runner phases, simulator runs, replays. The buffer can be exported
    as Chrome [trace_event] JSON (loadable in [about:tracing] or
    Perfetto) or rendered as a human-readable tree.

    Timestamps are microseconds relative to the tracer epoch (process
    start or the last {!reset}) and are paired with a monotonically
    increasing sequence number, so event ordering is well defined even
    when the clock ties. Emission is cheap and allocation-free when
    tracing is disabled; the buffer is bounded (events past the capacity
    are counted in {!dropped}, not stored). *)

(** Attribute values. *)
type value = S of string | I of int64 | F of float | B of bool

type attrs = (string * value) list

(** A completed event, as stored in the buffer. [Span] durations and all
    timestamps are in microseconds; [depth] is the span-nesting level at
    emission time; [seq] is the begin-time sequence number. *)
type event =
  | Span of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      seq : int;
      attrs : attrs;
    }
  | Instant of {
      name : string; ts : float; depth : int; seq : int; attrs : attrs;
    }

val event_name : event -> string
val event_attrs : event -> attrs

(** Attribute lookup by key. *)
val attr : event -> string -> value option

(** An in-flight span handle, as returned by {!begin_span}. *)
type span

(** Tracing is enabled by default; when disabled, every emission
    function is a no-op. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Buffer capacity (default 65536 events); events emitted once the
    buffer is full are dropped and counted. *)
val set_capacity : int -> unit

(** Open a span. The span must be closed with {!end_span} (or use
    {!with_span}); spans close in LIFO order. *)
val begin_span : ?attrs:attrs -> string -> span

(** Attach an attribute to an in-flight span. *)
val add_attr : span -> string -> value -> unit

(** Close a span, appending it to the buffer; [attrs] are added to those
    given at begin time. Closing twice is a no-op. *)
val end_span : ?attrs:attrs -> span -> unit

(** [with_span name f] runs [f] inside a span. An exception closes the
    span with an ["error"] attribute and re-raises. *)
val with_span : ?attrs:attrs -> string -> (span -> 'a) -> 'a

(** Emit a zero-duration event at the current nesting depth. *)
val instant : ?attrs:attrs -> string -> unit

(** Buffered events, oldest (lowest completion order) first. Note that a
    nested span completes before its parent. *)
val events : unit -> event list

(** Total events emitted since the last {!reset}, including dropped. *)
val emitted : unit -> int

val dropped : unit -> int

(** Names of buffered span events (completion order). *)
val span_names : unit -> string list

(** Clear the buffer and restart the epoch and sequence numbers. *)
val reset : unit -> unit

(** Export the buffer as Chrome [trace_event] JSON (an object with a
    ["traceEvents"] array of ["ph":"X"] complete events and ["ph":"i"]
    instants). *)
val to_chrome : unit -> string

(** {!to_chrome} to a file. *)
val write_chrome : string -> unit

(** Human-readable tree: spans indented by nesting depth, in begin-time
    order, with durations and attributes. *)
val pp_tree : Format.formatter -> unit -> unit

val tree : unit -> string
