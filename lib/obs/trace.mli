(** Structured tracing: lightweight spans and instant events.

    The process-wide tracer buffers events in memory; execution layers
    emit spans (a named interval with key/value attributes) and instant
    events at well-known points — pipeline stages, supervisor attempts,
    runner phases, simulator runs, replays. The buffer can be exported
    as Chrome [trace_event] JSON (loadable in [about:tracing] or
    Perfetto) or rendered as a human-readable tree.

    Timestamps are microseconds relative to the tracer epoch (process
    start or the last {!reset}) and are paired with a monotonically
    increasing sequence number, so event ordering is well defined even
    when the clock ties. Emission is cheap and allocation-free when
    tracing is disabled; the buffer is bounded (events past the capacity
    are counted in {!dropped}, not stored). *)

(** Attribute values. *)
type value = S of string | I of int64 | F of float | B of bool

type attrs = (string * value) list

(** A completed event, as stored in the buffer. [Span] durations and all
    timestamps are in microseconds; [depth] is the span-nesting level at
    emission time; [seq] is the begin-time sequence number. *)
type event =
  | Span of {
      name : string;
      ts : float;
      dur : float;
      depth : int;
      seq : int;
      attrs : attrs;
    }
  | Instant of {
      name : string; ts : float; depth : int; seq : int; attrs : attrs;
    }

val event_name : event -> string
val event_attrs : event -> attrs

(** Render one attribute value as a JSON token ([I] keeps full int64
    precision; non-finite floats render as quoted hex strings). *)
val json_of_value : value -> string

(** Attribute lookup by key. *)
val attr : event -> string -> value option

(** An in-flight span handle, as returned by {!begin_span}. *)
type span

(** {1 Correlation identifiers}

    A {e trace ID} names one logical unit of fleet work across process
    boundaries; {e span IDs} name individual requests within it. The
    shard client stamps both into every wire frame, the daemon tags its
    handler span with the caller's IDs, and [elfied trace-merge] joins
    the files into one timeline. IDs render as 16 lowercase hex digits
    ({!hex_id}). *)

(** This process's trace ID — drawn lazily from the pid and wall clock
    (never zero), stable until {!set_trace_id}. *)
val trace_id : unit -> int64

val set_trace_id : int64 -> unit

(** A fresh per-request span ID (unique within the process). *)
val fresh_span_id : unit -> int64

val hex_id : int64 -> string

(** The ["process_name"] label the Chrome export advertises; defaults
    to the executable basename. *)
val set_process_label : string -> unit

val process_label : unit -> string

(** Tracing is enabled by default; when disabled, every emission
    function is a no-op. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Buffer capacity (default 65536 events); events emitted once the
    buffer is full are dropped and counted. *)
val set_capacity : int -> unit

(** Open a span. The span must be closed with {!end_span} (or use
    {!with_span}); spans close in LIFO order. *)
val begin_span : ?attrs:attrs -> string -> span

(** Attach an attribute to an in-flight span. *)
val add_attr : span -> string -> value -> unit

(** Close a span, appending it to the buffer; [attrs] are added to those
    given at begin time. Closing twice is a no-op. *)
val end_span : ?attrs:attrs -> span -> unit

(** [with_span name f] runs [f] inside a span. An exception closes the
    span with an ["error"] attribute and re-raises. *)
val with_span : ?attrs:attrs -> string -> (span -> 'a) -> 'a

(** Emit a zero-duration event at the current nesting depth. *)
val instant : ?attrs:attrs -> string -> unit

(** Buffered events, oldest (lowest completion order) first. Note that a
    nested span completes before its parent. *)
val events : unit -> event list

(** Total events emitted since the last {!reset}, including dropped. *)
val emitted : unit -> int

val dropped : unit -> int

(** Names of buffered span events (completion order). *)
val span_names : unit -> string list

(** Clear the buffer and restart the epoch and sequence numbers. *)
val reset : unit -> unit

(** Export the buffer as Chrome [trace_event] JSON: an object with a
    ["traceEvents"] array of ["ph":"X"] complete events and ["ph":"i"]
    instants, preceded by ["ph":"M"] [process_name] / [thread_name]
    metadata so merged multi-process traces show named tracks. Every
    event carries this process's pid (override with [pid] / [label] for
    tests); the top-level object records the absolute tracer epoch
    (["epochUs"]) so [elfied trace-merge] can align files onto one
    clock, and the process ["traceId"]. *)
val to_chrome : ?pid:int -> ?label:string -> unit -> string

(** {!to_chrome} to a file. *)
val write_chrome : ?pid:int -> ?label:string -> string -> unit

(** Human-readable tree: spans indented by nesting depth, in begin-time
    order, with durations and attributes. *)
val pp_tree : Format.formatter -> unit -> unit

val tree : unit -> string
