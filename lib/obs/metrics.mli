(** Process-global metrics registry: counters, gauges and fixed-bucket
    histograms with Prometheus-style labels.

    Execution layers declare metric families by name ({!counter},
    {!gauge}, {!histogram} are get-or-create and cheap) and mutate
    labelled series ({!inc}, {!set}, {!observe}). The registry renders
    as a Prometheus text exposition ({!exposition}) and as a
    human-readable end-of-run summary table ({!summary}).

    Family names follow the usual conventions ([elfie_runs_total],
    [elfie_region_instructions], ...); creating the same name twice with
    a different kind raises [Invalid_argument].

    All operations are domain-safe: the registry is guarded by a single
    mutex, so series updated concurrently from {!Elfie_util.Pool}
    workers lose no increments. *)

type kind = Counter | Gauge | Histogram

(** A family descriptor. Descriptors stay valid across {!reset}: the
    next mutation re-registers the family. *)
type family

val kind_of : family -> kind
val name_of : family -> string

(** Get or create a counter family. *)
val counter : ?help:string -> string -> family

(** Get or create a gauge family. *)
val gauge : ?help:string -> string -> family

(** Get or create a histogram family with fixed upper bucket bounds
    (ascending, exclusive of [+Inf], which is implicit). The default
    buckets are the Prometheus classics
    [0.005 .. 10]. *)
val histogram : ?help:string -> ?buckets:float list -> string -> family

(** Increment a counter series by [by] (default 1). *)
val inc : ?labels:(string * string) list -> ?by:float -> family -> unit

(** Set a gauge series. *)
val set : ?labels:(string * string) list -> family -> float -> unit

(** Record an observation in a histogram series. *)
val observe : ?labels:(string * string) list -> family -> float -> unit

(** Current value of a counter/gauge series (0 when never touched); for
    a histogram, the observation count. *)
val value : ?labels:(string * string) list -> family -> float

(** Sum of {!value} over every series of the family. *)
val total : family -> float

(** Cumulative histogram snapshot of one series: [(le, count)] pairs
    (with [infinity] for the +Inf bucket), the sum, and the count. *)
val bucket_snapshot :
  ?labels:(string * string) list ->
  family ->
  (float * int) list * float * int

(** Registered family names, in registration order. *)
val families : unit -> string list

(** Prometheus text exposition of every registered family (HELP/TYPE
    headers, escaped label values, cumulative histogram buckets). *)
val exposition : unit -> string

(** One parsed exposition sample: metric name (including any
    [_bucket] / [_sum] / [_count] suffix), labels in source order, and
    the value. *)
type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(** Parse a Prometheus text exposition (the format {!exposition}
    produces) back into samples, as the fleet scraper does with bytes
    that crossed the wire. Comment, blank and malformed lines are
    skipped. [+Inf] / [-Inf] values parse as OCaml infinities. *)
val parse_exposition : string -> sample list

(** Find one sample's value by name and exact label set (order
    insensitive). *)
val sample_value :
  ?labels:(string * string) list -> string -> sample list -> float option

(** Human-readable end-of-run table: one row per family with its series
    count and total. *)
val summary : unit -> string

(** Drop every family and series. *)
val reset : unit -> unit
