(* CLI plumbing shared by elfie_run, pinplay and experiments: turn the
   --trace/--metrics/--profile flags into exporter side effects that run
   even when the wrapped command fails. *)

let with_reporting ?trace ?metrics ?profile ?(out = stdout) f =
  (match profile with
  | Some interval -> Profile.set_global (Some (Profile.create ~interval ()))
  | None -> ());
  let finish () =
    (match trace with
    | Some path ->
        Trace.write_chrome path;
        Printf.fprintf out "trace: %d event(s) written to %s\n"
          (List.length (Trace.events ()))
          path
    | None -> ());
    (match metrics with
    | Some path ->
        let oc = open_out_bin path in
        output_string oc (Metrics.exposition ());
        close_out oc;
        Printf.fprintf out "metrics: exposition written to %s\n%s" path
          (Metrics.summary ())
    | None -> ());
    match (profile, Profile.global ()) with
    | Some _, Some p -> output_string out (Profile.report p)
    | _ -> ()
  in
  Fun.protect ~finally:finish f
