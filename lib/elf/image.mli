(** ELF64 images: a typed view, a byte-exact writer and a validating
    reader.

    ELFies are genuine ELF files produced by this module. The design
    point that matters for the paper is faithful loader semantics:
    only sections carrying [SHF_ALLOC] get a [PT_LOAD] program header,
    so marking the pinball's stack pages non-allocatable really does
    keep the loader from mapping them (Section II-B3, stack collision).

    [write] followed by [read] round-trips the typed view
    (property-tested). *)

(** Raised by {!read} with a structured diagnostic: error code, artifact
    name, byte offset of the offending field and a human message. *)
exception Bad_elf of Elfie_util.Diag.t

type section_kind = Progbits | Nobits | Note

type section = {
  name : string;
  kind : section_kind;
  alloc : bool;
  writable : bool;
  executable : bool;
  addr : int64;  (** virtual address when allocatable *)
  data : bytes;  (** empty for [Nobits] *)
  align : int;
}

val section :
  ?alloc:bool ->
  ?writable:bool ->
  ?executable:bool ->
  ?kind:section_kind ->
  ?align:int ->
  name:string ->
  addr:int64 ->
  bytes ->
  section

type symbol = { sym_name : string; value : int64; func : bool }

type t = {
  exec : bool;  (** [ET_EXEC] vs [ET_REL] *)
  entry : int64;
  sections : section list;
  symbols : symbol list;
}

(** Serialize to ELF64 little-endian bytes. Emits one [PT_LOAD] program
    header per allocatable section, a [.symtab]/[.strtab] pair when
    there are symbols, and [.shstrtab]. *)
val write : t -> bytes

(** Parse and validate an ELF64 image; raises {!Bad_elf} on anything
    malformed (bad magic, wrong class/endianness/machine, out-of-bounds
    headers, truncated section data). [artifact] names the image in
    diagnostics (e.g. its file path). *)
val read : ?artifact:string -> bytes -> t

(** Non-raising variant of {!read}. *)
val read_result : ?artifact:string -> bytes -> (t, Elfie_util.Diag.t) result

(** Segments the system loader would map: [(vaddr, data, flags)] for
    each allocatable section, where flags are [(r, w, x)]. *)
val loadable : t -> (int64 * bytes * (bool * bool * bool)) list

val find_section : t -> string -> section option
val find_symbol : t -> string -> int64 option

(** Human-readable [readelf]-style summary. *)
val pp : Format.formatter -> t -> unit
