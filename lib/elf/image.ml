open Elfie_util

exception Bad_elf of Diag.t

(* The artifact name is patched in at the [read] boundary, where the
   caller-supplied path is known. *)
let bad ?offset ?(code = Diag.Malformed) fmt =
  Printf.ksprintf
    (fun s -> raise (Bad_elf (Diag.v ?offset ~artifact:"<elf-image>" code s)))
    fmt

type section_kind = Progbits | Nobits | Note

type section = {
  name : string;
  kind : section_kind;
  alloc : bool;
  writable : bool;
  executable : bool;
  addr : int64;
  data : bytes;
  align : int;
}

let section ?(alloc = true) ?(writable = false) ?(executable = false)
    ?(kind = Progbits) ?(align = 16) ~name ~addr data =
  { name; kind; alloc; writable; executable; addr; data; align }

type symbol = { sym_name : string; value : int64; func : bool }

type t = {
  exec : bool;
  entry : int64;
  sections : section list;
  symbols : symbol list;
}

(* --- String tables ------------------------------------------------------ *)

module Strtab = struct
  type tab = { buf : Buffer.t; mutable offsets : (string * int) list }

  let create () =
    let buf = Buffer.create 64 in
    Buffer.add_char buf '\000';
    { buf; offsets = [] }

  let add t name =
    match List.assoc_opt name t.offsets with
    | Some off -> off
    | None ->
        let off = Buffer.length t.buf in
        Buffer.add_string t.buf name;
        Buffer.add_char t.buf '\000';
        t.offsets <- (name, off) :: t.offsets;
        off

  let contents t = Buffer.to_bytes t.buf
end

let strtab_lookup data off =
  if off >= Bytes.length data then
    bad ~code:Diag.Count_out_of_range "string table offset %d out of bounds" off;
  let rec find_end i =
    if i >= Bytes.length data then bad "unterminated string table entry"
    else if Bytes.get data i = '\000' then i
    else find_end (i + 1)
  in
  Bytes.sub_string data off (find_end off - off)

(* --- Writer ------------------------------------------------------------- *)

let align_up v a = (v + a - 1) land lnot (a - 1)

let section_flags s =
  (if s.alloc then Consts.shf_alloc else 0)
  lor (if s.writable then Consts.shf_write else 0)
  lor if s.executable then Consts.shf_execinstr else 0

let section_type s =
  match s.kind with
  | Progbits -> Consts.sht_progbits
  | Nobits -> Consts.sht_nobits
  | Note -> Consts.sht_note

let write t =
  let shstrtab = Strtab.create () in
  let strtab = Strtab.create () in
  let have_syms = t.symbols <> [] in
  (* Section table layout: null, user sections, (symtab, strtab)?, shstrtab *)
  let user = Array.of_list t.sections in
  let n_user = Array.length user in
  let symtab_idx = if have_syms then Some (1 + n_user) else None in
  let shstr_idx = 1 + n_user + if have_syms then 2 else 0 in
  let shnum = shstr_idx + 1 in
  let loadable = List.filter (fun s -> s.alloc && s.kind <> Nobits) t.sections in
  let phnum = if t.exec then List.length loadable else 0 in
  (* Pre-intern all names so table sizes are final before layout. *)
  Array.iter (fun s -> ignore (Strtab.add shstrtab s.name)) user;
  if have_syms then begin
    ignore (Strtab.add shstrtab ".symtab");
    ignore (Strtab.add shstrtab ".strtab")
  end;
  ignore (Strtab.add shstrtab ".shstrtab");
  List.iter (fun sym -> ignore (Strtab.add strtab sym.sym_name)) t.symbols;
  let symtab_data =
    if not have_syms then Bytes.empty
    else begin
      let w = Byteio.Writer.create ~capacity:((List.length t.symbols + 1) * 24) () in
      Byteio.Writer.zeros w Consts.symentsize;
      List.iter
        (fun sym ->
          Byteio.Writer.u32 w (Strtab.add strtab sym.sym_name);
          Byteio.Writer.u8 w
            (Consts.st_info ~bind:Consts.stb_global
               ~typ:(if sym.func then Consts.stt_func else 0));
          Byteio.Writer.u8 w 0;
          Byteio.Writer.u16 w Consts.shn_abs;
          Byteio.Writer.u64 w sym.value;
          Byteio.Writer.u64 w 0L)
        t.symbols;
      Byteio.Writer.contents w
    end
  in
  let strtab_data = Strtab.contents strtab in
  let shstrtab_data = Strtab.contents shstrtab in
  (* Lay out file offsets: header, phdrs, section data, shdrs. *)
  let pos = ref (Consts.ehsize + (phnum * Consts.phentsize)) in
  let place align len =
    let off = align_up !pos (max 1 align) in
    pos := off + len;
    off
  in
  let user_offsets =
    Array.map
      (fun s ->
        match s.kind with
        | Nobits -> !pos
        | Progbits | Note -> place s.align (Bytes.length s.data))
      user
  in
  let symtab_off = if have_syms then place 8 (Bytes.length symtab_data) else 0 in
  let strtab_off = if have_syms then place 1 (Bytes.length strtab_data) else 0 in
  let shstrtab_off = place 1 (Bytes.length shstrtab_data) in
  let shoff = align_up !pos 8 in
  let total = shoff + (shnum * Consts.shentsize) in
  let w = Byteio.Writer.create ~capacity:total () in
  (* ELF header. *)
  Byteio.Writer.string w Consts.magic;
  Byteio.Writer.u8 w Consts.elfclass64;
  Byteio.Writer.u8 w Consts.elfdata2lsb;
  Byteio.Writer.u8 w Consts.ev_current;
  Byteio.Writer.zeros w 9;
  Byteio.Writer.u16 w (if t.exec then Consts.et_exec else Consts.et_rel);
  Byteio.Writer.u16 w Consts.em_vx86;
  Byteio.Writer.u32 w Consts.ev_current;
  Byteio.Writer.u64 w t.entry;
  Byteio.Writer.u64 w (Int64.of_int (if phnum > 0 then Consts.ehsize else 0));
  Byteio.Writer.u64 w (Int64.of_int shoff);
  Byteio.Writer.u32 w 0;
  Byteio.Writer.u16 w Consts.ehsize;
  Byteio.Writer.u16 w Consts.phentsize;
  Byteio.Writer.u16 w phnum;
  Byteio.Writer.u16 w Consts.shentsize;
  Byteio.Writer.u16 w shnum;
  Byteio.Writer.u16 w shstr_idx;
  assert (Byteio.Writer.length w = Consts.ehsize);
  (* Program headers: one PT_LOAD per allocatable progbits section. *)
  if t.exec then
    List.iter
      (fun s ->
        let idx = ref 0 in
        Array.iteri (fun i u -> if u == s then idx := i) user;
        let off = user_offsets.(!idx) in
        Byteio.Writer.u32 w Consts.pt_load;
        Byteio.Writer.u32 w
          (Consts.pf_r
          lor (if s.writable then Consts.pf_w else 0)
          lor if s.executable then Consts.pf_x else 0);
        Byteio.Writer.u64 w (Int64.of_int off);
        Byteio.Writer.u64 w s.addr;
        Byteio.Writer.u64 w s.addr;
        Byteio.Writer.u64 w (Int64.of_int (Bytes.length s.data));
        Byteio.Writer.u64 w (Int64.of_int (Bytes.length s.data));
        Byteio.Writer.u64 w (Int64.of_int (max 1 s.align)))
      loadable;
  (* Section data. *)
  Array.iteri
    (fun i s ->
      match s.kind with
      | Nobits -> ()
      | Progbits | Note ->
          Byteio.Writer.pad_to w user_offsets.(i);
          Byteio.Writer.bytes w s.data)
    user;
  if have_syms then begin
    Byteio.Writer.pad_to w symtab_off;
    Byteio.Writer.bytes w symtab_data;
    Byteio.Writer.pad_to w strtab_off;
    Byteio.Writer.bytes w strtab_data
  end;
  Byteio.Writer.pad_to w shstrtab_off;
  Byteio.Writer.bytes w shstrtab_data;
  Byteio.Writer.pad_to w shoff;
  (* Section headers. *)
  let shdr ~name_off ~stype ~flags ~addr ~off ~size ~link ~info ~align ~entsize =
    Byteio.Writer.u32 w name_off;
    Byteio.Writer.u32 w stype;
    Byteio.Writer.u64 w (Int64.of_int flags);
    Byteio.Writer.u64 w addr;
    Byteio.Writer.u64 w (Int64.of_int off);
    Byteio.Writer.u64 w (Int64.of_int size);
    Byteio.Writer.u32 w link;
    Byteio.Writer.u32 w info;
    Byteio.Writer.u64 w (Int64.of_int align);
    Byteio.Writer.u64 w (Int64.of_int entsize)
  in
  shdr ~name_off:0 ~stype:Consts.sht_null ~flags:0 ~addr:0L ~off:0 ~size:0 ~link:0
    ~info:0 ~align:0 ~entsize:0;
  Array.iteri
    (fun i s ->
      shdr
        ~name_off:(Strtab.add shstrtab s.name)
        ~stype:(section_type s) ~flags:(section_flags s) ~addr:s.addr
        ~off:user_offsets.(i) ~size:(Bytes.length s.data) ~link:0 ~info:0
        ~align:(max 1 s.align) ~entsize:0)
    user;
  (match symtab_idx with
  | Some idx ->
      shdr
        ~name_off:(Strtab.add shstrtab ".symtab")
        ~stype:Consts.sht_symtab ~flags:0 ~addr:0L ~off:symtab_off
        ~size:(Bytes.length symtab_data) ~link:(idx + 1) ~info:1 ~align:8
        ~entsize:Consts.symentsize;
      shdr
        ~name_off:(Strtab.add shstrtab ".strtab")
        ~stype:Consts.sht_strtab ~flags:0 ~addr:0L ~off:strtab_off
        ~size:(Bytes.length strtab_data) ~link:0 ~info:0 ~align:1 ~entsize:0
  | None -> ());
  shdr
    ~name_off:(Strtab.add shstrtab ".shstrtab")
    ~stype:Consts.sht_strtab ~flags:0 ~addr:0L ~off:shstrtab_off
    ~size:(Bytes.length shstrtab_data) ~link:0 ~info:0 ~align:1 ~entsize:0;
  Byteio.Writer.contents w

(* --- Reader ------------------------------------------------------------- *)

type raw_shdr = {
  rs_name : int;
  rs_type : int;
  rs_flags : int64;
  rs_addr : int64;
  rs_off : int;
  rs_size : int;
  rs_link : int;
  rs_entsize : int;
  rs_align : int;
}

let read_exn buf =
  let len = Bytes.length buf in
  if len < Consts.ehsize then
    bad ~code:Diag.Truncated "file too small for ELF header (%d bytes)" len;
  let r = Byteio.Reader.of_bytes buf in
  let magic = Byteio.Reader.string_n r 4 in
  if magic <> Consts.magic then bad ~offset:0 ~code:Diag.Bad_magic "bad magic";
  let cls = Byteio.Reader.u8 r in
  if cls <> Consts.elfclass64 then bad ~offset:4 "not ELFCLASS64 (class=%d)" cls;
  let data = Byteio.Reader.u8 r in
  if data <> Consts.elfdata2lsb then
    bad ~offset:5 "not little-endian (data=%d)" data;
  let version = Byteio.Reader.u8 r in
  if version <> Consts.ev_current then bad ~offset:6 "bad ident version %d" version;
  Byteio.Reader.seek r 16;
  let etype = Byteio.Reader.u16 r in
  let exec =
    if etype = Consts.et_exec then true
    else if etype = Consts.et_rel then false
    else bad "unsupported e_type %d" etype
  in
  let machine = Byteio.Reader.u16 r in
  if machine <> Consts.em_vx86 then bad "not a VX86 image (e_machine=0x%x)" machine;
  let _eversion = Byteio.Reader.u32 r in
  let entry = Byteio.Reader.u64 r in
  let _phoff = Byteio.Reader.u64 r in
  let shoff = Int64.to_int (Byteio.Reader.u64 r) in
  let _flags = Byteio.Reader.u32 r in
  let _ehsize = Byteio.Reader.u16 r in
  let _phentsize = Byteio.Reader.u16 r in
  let _phnum = Byteio.Reader.u16 r in
  let shentsize = Byteio.Reader.u16 r in
  if shentsize <> Consts.shentsize then bad "bad e_shentsize %d" shentsize;
  let shnum = Byteio.Reader.u16 r in
  let shstrndx = Byteio.Reader.u16 r in
  if shoff < 0 || shoff + (shnum * Consts.shentsize) > len then
    bad ~code:Diag.Count_out_of_range
      "section header table out of bounds (shoff=%d shnum=%d len=%d)" shoff
      shnum len;
  if shstrndx >= shnum then
    bad ~code:Diag.Count_out_of_range "e_shstrndx %d out of range (shnum=%d)"
      shstrndx shnum;
  let shdrs =
    Array.init shnum (fun i ->
        Byteio.Reader.seek r (shoff + (i * Consts.shentsize));
        let rs_name = Byteio.Reader.u32 r in
        let rs_type = Byteio.Reader.u32 r in
        let rs_flags = Byteio.Reader.u64 r in
        let rs_addr = Byteio.Reader.u64 r in
        let rs_off = Int64.to_int (Byteio.Reader.u64 r) in
        let rs_size = Int64.to_int (Byteio.Reader.u64 r) in
        let rs_link = Byteio.Reader.u32 r in
        let _info = Byteio.Reader.u32 r in
        let rs_align = Int64.to_int (Byteio.Reader.u64 r) in
        let rs_entsize = Int64.to_int (Byteio.Reader.u64 r) in
        { rs_name; rs_type; rs_flags; rs_addr; rs_off; rs_size; rs_link;
          rs_entsize; rs_align })
  in
  let section_data sh what =
    if sh.rs_type = Consts.sht_nobits then Bytes.empty
    else begin
      if sh.rs_off < 0 || sh.rs_size < 0 || sh.rs_off + sh.rs_size > len then
        bad ~code:Diag.Count_out_of_range "%s data out of bounds (off=%d size=%d)"
          what sh.rs_off sh.rs_size;
      Bytes.sub buf sh.rs_off sh.rs_size
    end
  in
  let shstrtab = section_data shdrs.(shstrndx) ".shstrtab" in
  let name_of sh = strtab_lookup shstrtab sh.rs_name in
  let flag sh f = Int64.logand sh.rs_flags (Int64.of_int f) <> 0L in
  let sections = ref [] in
  let symbols = ref [] in
  Array.iteri
    (fun i sh ->
      if i = 0 || i = shstrndx then ()
      else if sh.rs_type = Consts.sht_symtab then begin
        if sh.rs_entsize <> Consts.symentsize then
          bad "bad symtab entsize %d" sh.rs_entsize;
        if sh.rs_link >= shnum then
          bad ~code:Diag.Count_out_of_range "symtab link %d out of range"
            sh.rs_link;
        let strtab = section_data shdrs.(sh.rs_link) ".strtab" in
        let data = section_data sh ".symtab" in
        let count = Bytes.length data / Consts.symentsize in
        let sr = Byteio.Reader.of_bytes data in
        for s = 1 to count - 1 do
          Byteio.Reader.seek sr (s * Consts.symentsize);
          let name_off = Byteio.Reader.u32 sr in
          let info = Byteio.Reader.u8 sr in
          let _other = Byteio.Reader.u8 sr in
          let _shndx = Byteio.Reader.u16 sr in
          let value = Byteio.Reader.u64 sr in
          symbols :=
            {
              sym_name = strtab_lookup strtab name_off;
              value;
              func = info land 0xf = Consts.stt_func;
            }
            :: !symbols
        done
      end
      else if sh.rs_type = Consts.sht_strtab then ()
        (* .strtab consumed via symtab link above *)
      else
        let kind =
          if sh.rs_type = Consts.sht_progbits then Progbits
          else if sh.rs_type = Consts.sht_nobits then Nobits
          else if sh.rs_type = Consts.sht_note then Note
          else bad "unsupported section type %d for %s" sh.rs_type (name_of sh)
        in
        sections :=
          {
            name = name_of sh;
            kind;
            alloc = flag sh Consts.shf_alloc;
            writable = flag sh Consts.shf_write;
            executable = flag sh Consts.shf_execinstr;
            addr = sh.rs_addr;
            data = section_data sh (name_of sh);
            align = max 1 sh.rs_align;
          }
          :: !sections)
    shdrs;
  { exec; entry; sections = List.rev !sections; symbols = List.rev !symbols }

(* Any cursor exhaustion inside the parser is a malformed file, not a
   programming error. *)
let read ?(artifact = "<elf-image>") buf =
  try read_exn buf with
  | Bad_elf d -> raise (Bad_elf { d with Diag.artifact })
  | Byteio.Truncated msg ->
      raise (Bad_elf (Diag.v ~artifact Diag.Truncated msg))

let read_result ?artifact buf =
  match read ?artifact buf with
  | image -> Ok image
  | exception Bad_elf d -> Error d

let loadable t =
  List.filter_map
    (fun s ->
      if s.alloc && s.kind <> Nobits then
        Some (s.addr, s.data, (true, s.writable, s.executable))
      else None)
    t.sections

let find_section t name = List.find_opt (fun s -> s.name = name) t.sections

let find_symbol t name =
  List.find_map
    (fun sym -> if sym.sym_name = name then Some sym.value else None)
    t.symbols

let pp fmt t =
  Format.fprintf fmt "@[<v>ELF %s, entry 0x%Lx, %d sections, %d symbols@,"
    (if t.exec then "EXEC" else "REL")
    t.entry (List.length t.sections) (List.length t.symbols);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-24s %s%s%s%s addr=0x%Lx size=%d@," s.name
        (match s.kind with Progbits -> "P" | Nobits -> "B" | Note -> "N")
        (if s.alloc then "A" else "-")
        (if s.writable then "W" else "-")
        (if s.executable then "X" else "-")
        s.addr (Bytes.length s.data))
    t.sections;
  Format.fprintf fmt "@]"
