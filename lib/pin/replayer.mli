(** The PinPlay replayer.

    [Constrained] mode is faithful pinball replay: the recorded thread
    schedule is enforced and data system calls are skipped, with results
    and kernel memory side effects injected from the log — so replay
    reproduces the captured region exactly (shared-memory access order
    is repeated, per the paper's "constrained replay" guarantee).

    [Injectionless] mode is the paper's [-replay:injection 0] switch: the
    same initial state, but system calls re-execute natively and threads
    are scheduled freely. It mimics ELFie execution while still under
    Pin, and exists for debugging ELFie failures. *)

type mode =
  | Constrained
  | Injectionless of { seed : int64; fs_init : Elfie_kernel.Fs.t -> unit }

(** Where replay first left the recorded execution: the thread, its
    program counter and retired instruction count at that point, and a
    description of what disagreed. *)
type divergence = {
  div_tid : int;
  div_pc : int64;
  div_icount : int64;
  div_what : string;
}

type result = {
  per_thread_retired : int64 array;
  matched_icounts : bool;
      (** every region-start thread retired exactly its recorded count *)
  divergences : int;  (** syscalls that did not line up with the log *)
  first_divergence : divergence option;
      (** the first syscall-level divergence, or (when syscalls lined up
          but counts did not) the first thread whose retired count
          disagrees with the recording *)
  capped : bool;
      (** the instruction cap stopped the replay — a wedged or runaway
          execution, not a finished one *)
  retired : int64;
  cycles : int64;
  stdout : string;
}

(** Materialise the pinball into a fresh machine and run the region.
    [max_ins] bounds the replay machine-wide; injection-less replay
    defaults to 3x the recorded region icount (free scheduling can spin
    forever past a divergence), constrained replay to unbounded. *)
val replay : ?mode:mode -> ?max_ins:int64 -> Elfie_pinball.Pinball.t -> result

(** Build the machine/kernel pair positioned at region start without
    running it — used by simulators that drive execution themselves.
    Returns the per-tid injection queues already wired when
    [constrained] is true; the closure reports the divergence count and
    the first divergence seen so far. *)
val materialize :
  ?constrained:bool ->
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  Elfie_pinball.Pinball.t ->
  Elfie_machine.Machine.t
  * Elfie_kernel.Vkernel.t
  * (unit -> int * divergence option)
