(** Basic-block-vector profiling (the SimPoint front-end).

    Runs a program and emits one sparse basic-block vector per fixed-size
    instruction slice: for each slice, how many instructions retired
    inside each basic block (identified by its start address). These
    vectors are the input to the k-means phase clustering in
    {!Elfie_simpoint}.

    Collection is {e block-driven}: the default {!profile} counts whole
    translated-block runs through [Machine.set_block_observer] — no
    per-instruction hook, so the run stays on the machine's hook-free
    batched fast path. Slice boundaries are reconstructed exactly by
    splitting a run's charge where the boundary falls inside it, and
    per-thread block attribution is preserved, so the output is
    bit-identical to the retained per-instruction reference tool
    ({!tool} / {!profile_per_ins}). *)

type slice = {
  index : int;
  vector : (int64 * int) array;  (** (block start, instructions), sorted *)
  instructions : int64;  (** normally [slice_size]; last slice may be short *)
}

type profile = {
  slices : slice list;
  slice_size : int64;
  total_instructions : int64;
}

(** Profile a full program run, hook-free (block-observer driven). When a
    global {!Elfie_obs.Profile} is active it is chained on the same
    observer slot, so [--profile] still sees the run. *)
val profile : ?max_ins:int64 -> Run.spec -> slice_size:int64 -> profile

(** Profile a full program run with the per-instruction reference tool —
    the oracle the block-driven collector is validated against (and the
    pre-block-observer measurement baseline). *)
val profile_per_ins : ?max_ins:int64 -> Run.spec -> slice_size:int64 -> profile

(** The block-driven collector itself, for wiring to
    [Machine.set_block_observer] directly (or chaining with other
    observers): returns the observer function and a function extracting
    the finished profile. *)
val collector :
  slice_size:int64 ->
  (tid:int -> pcs:int64 array -> n:int -> ends_block:bool -> unit)
  * (unit -> profile)

(** The per-instruction profiling tool, for composing with other tools:
    returns the tool and a function extracting the finished profile. *)
val tool : slice_size:int64 -> Pintool.t * (unit -> profile)
