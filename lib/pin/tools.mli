(** A library of ready-made Vpin analysis tools (the paper's Section
    III-A use case: feeding ELFies to Pin-based dynamic analyses).

    Every tool is {e marker-aware}: analysis can start at the first ROI
    marker so ELFie startup code is excluded, and can stop after a given
    number of analysed instructions (the region icount recorded in the
    pinball) for a graceful end of analysis. *)

(** Common scaffolding returned by each tool constructor: the tool to
    attach and a function rendering the analysis report. *)
type 'a analysis = { tool : Pintool.t; result : unit -> 'a }

(** Instruction-mix histogram: counts per instruction class. *)
type mix = {
  mix_total : int64;
  mix_classes : (string * int64) list;  (** sorted by count, descending *)
}

val instruction_mix :
  ?from_marker:bool -> ?limit:int64 -> unit -> mix analysis

(** Memory-footprint profiler: distinct pages and cache lines touched,
    read/write volumes. *)
type footprint = {
  fp_pages : int;
  fp_lines : int;
  fp_reads : int64;
  fp_writes : int64;
  fp_bytes_read : int64;
  fp_bytes_written : int64;
}

val memory_footprint :
  ?from_marker:bool -> ?limit:int64 -> unit -> footprint analysis

(** Branch profile: executed/taken counts and the hottest branch sites. *)
type branch_profile = {
  br_executed : int64;
  br_taken : int64;
  br_hottest : (int64 * int) list;  (** (pc, executions), top ten *)
}

val branch_profile :
  ?from_marker:bool -> ?limit:int64 -> unit -> branch_profile analysis

(** Basic-block execution counts (a flat profile over block heads). *)
type block_profile = { bb_blocks : int; bb_hottest : (int64 * int) list }

val block_profile :
  ?from_marker:bool -> ?limit:int64 -> unit -> block_profile analysis

(** Wrap an {!Elfie_obs.Profile.t} as a Vpin tool: every retired
    instruction is fed to the profiler, with branches/calls/syscalls
    marked as basic-block ends. *)
val profile_tool : Elfie_obs.Profile.t -> Pintool.t

(** Attach the global profiler ({!Elfie_obs.Profile.global}) to a
    machine, when one is installed — the [--profile] hook used by the
    native runner and the replayer. *)
val attach_global_profile : Elfie_machine.Machine.t -> unit

val pp_mix : Format.formatter -> mix -> unit
val pp_footprint : Format.formatter -> footprint -> unit
val pp_branch_profile : Format.formatter -> branch_profile -> unit
val pp_block_profile : Format.formatter -> block_profile -> unit
