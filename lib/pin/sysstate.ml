open Elfie_pinball
open Elfie_kernel

type t = {
  files : (string * string) list;
  fd_files : (int * string) list;
  brk_start : int64;
  brk_end : int64;
}

type fd_state = { proxy : string; mutable pos : int; in_region : bool }

let analyze (pb : Pinball.t) =
  let fd_states : (int, fd_state) Hashtbl.t = Hashtbl.create 8 in
  let chunks : (string, (int * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let fd_files = ref [] in
  let brk_end = ref pb.brk in
  let ensure_file proxy =
    if not (Hashtbl.mem chunks proxy) then Hashtbl.replace chunks proxy (ref [])
  in
  let lookup_fd fd =
    match Hashtbl.find_opt fd_states fd with
    | Some st -> Some st
    | None ->
        if fd <= 2 then None
        else begin
          (* Descriptor opened before the region: FD_n proxy. *)
          let proxy = Printf.sprintf "FD_%d" fd in
          let st = { proxy; pos = 0; in_region = false } in
          Hashtbl.replace fd_states fd st;
          ensure_file proxy;
          fd_files := (fd, proxy) :: !fd_files;
          Some st
        end
  in
  let entry e =
    let nr = e.Pinball.sys_nr in
    let ret = e.sys_ret in
    let arg i = e.sys_args.(i) in
    if nr = Abi.sys_open && ret >= 0L then begin
      let proxy = Option.value ~default:"?" e.sys_path in
      Hashtbl.replace fd_states (Int64.to_int ret) { proxy; pos = 0; in_region = true };
      ensure_file proxy
    end
    else if nr = Abi.sys_close then Hashtbl.remove fd_states (Int64.to_int (arg 0))
    else if nr = Abi.sys_read && ret > 0L then (
      match lookup_fd (Int64.to_int (arg 0)) with
      | None -> ()
      | Some st ->
          let data = String.concat "" (List.map snd e.sys_writes) in
          let lst = Hashtbl.find chunks st.proxy in
          lst := (st.pos, data) :: !lst;
          st.pos <- st.pos + Int64.to_int ret)
    else if nr = Abi.sys_write && ret > 0L then (
      match lookup_fd (Int64.to_int (arg 0)) with
      | None -> ()
      | Some st -> st.pos <- st.pos + Int64.to_int ret)
    else if nr = Abi.sys_lseek && ret >= 0L then (
      match Hashtbl.find_opt fd_states (Int64.to_int (arg 0)) with
      | Some st -> st.pos <- Int64.to_int ret
      | None -> ())
    else if (nr = Abi.sys_dup || nr = Abi.sys_dup2) && ret >= 0L then (
      match Hashtbl.find_opt fd_states (Int64.to_int (arg 0)) with
      | Some st -> Hashtbl.replace fd_states (Int64.to_int ret) st
      | None -> ())
    else if nr = Abi.sys_brk && ret > 0L then brk_end := ret
  in
  Array.iter (fun entries -> List.iter entry entries) pb.injections;
  let files =
    Hashtbl.fold
      (fun proxy lst acc ->
        let pieces = List.rev !lst in
        let size = List.fold_left (fun m (pos, d) -> max m (pos + String.length d)) 0 pieces in
        let buf = Bytes.make size '\000' in
        List.iter (fun (pos, d) -> Bytes.blit_string d 0 buf pos (String.length d)) pieces;
        (proxy, Bytes.to_string buf) :: acc)
      chunks []
    |> List.sort compare
  in
  { files; fd_files = List.sort compare !fd_files; brk_start = pb.brk; brk_end = !brk_end }

let install t fs ~workdir =
  List.iter
    (fun (name, content) ->
      let path =
        if String.length name > 0 && name.[0] = '/' then name
        else Fs.normalize ~cwd:workdir name
      in
      Fs.add_file fs ~path content)
    t.files

let to_files t =
  ("BRK.log", Printf.sprintf "0x%Lx 0x%Lx\n" t.brk_start t.brk_end) :: t.files

let of_files ?(artifact = "<sysstate>") files =
  let brk_art = Filename.concat artifact "BRK.log" in
  let brk_start, brk_end =
    match List.assoc_opt "BRK.log" files with
    | Some s -> (
        match Scanf.sscanf s "0x%Lx 0x%Lx" (fun a b -> (a, b)) with
        | v -> v
        | exception (Scanf.Scan_failure _ | End_of_file | Failure _) ->
            Elfie_util.Diag.fail ~artifact:brk_art Elfie_util.Diag.Malformed
              "BRK.log does not contain two hex words (got %S)"
              (String.sub s 0 (min 32 (String.length s))))
    | None ->
        Elfie_util.Diag.fail ~artifact:brk_art Elfie_util.Diag.Missing_file
          "sysstate directory %s is missing BRK.log" artifact
  in
  let files = List.filter (fun (n, _) -> n <> "BRK.log") files in
  let fd_files =
    List.filter_map
      (fun (n, _) ->
        match int_of_string_opt (String.sub n 3 (String.length n - 3)) with
        | Some fd when String.length n > 3 && String.sub n 0 3 = "FD_" -> Some (fd, n)
        | _ -> None
        | exception Invalid_argument _ -> None)
      files
  in
  { files; fd_files; brk_start; brk_end }

let encode_name name =
  String.concat "%2F" (String.split_on_char '/' name)

let decode_name name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let rec go i =
    if i < n then
      if i + 3 <= n && String.sub name i 3 = "%2F" then begin
        Buffer.add_char buf '/';
        go (i + 3)
      end
      else begin
        Buffer.add_char buf name.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, content) ->
      let oc = open_out_bin (Filename.concat dir (encode_name name)) in
      output_string oc content;
      close_out oc)
    (to_files t)

let of_files_result ?artifact files =
  Elfie_util.Diag.protect (fun () -> of_files ?artifact files)

let load_dir ~dir =
  let files =
    match Sys.readdir dir with
    | names ->
        Array.to_list names
        |> List.map (fun f ->
               let path = Filename.concat dir f in
               match
                 let ic = open_in_bin path in
                 Fun.protect
                   ~finally:(fun () -> close_in_noerr ic)
                   (fun () -> really_input_string ic (in_channel_length ic))
               with
               | s -> (decode_name f, s)
               | exception Sys_error msg ->
                   Elfie_util.Diag.fail ~artifact:path Elfie_util.Diag.Io_error
                     "%s" msg)
    | exception Sys_error msg ->
        Elfie_util.Diag.fail ~artifact:dir Elfie_util.Diag.Io_error "%s" msg
  in
  of_files ~artifact:dir files

let load_dir_result ~dir = Elfie_util.Diag.protect (fun () -> load_dir ~dir)

let pp fmt t =
  Format.fprintf fmt "@[<v>sysstate: brk 0x%Lx..0x%Lx@," t.brk_start t.brk_end;
  List.iter
    (fun (name, content) ->
      Format.fprintf fmt "  %s (%d bytes)@," name (String.length content))
    t.files;
  List.iter
    (fun (fd, name) -> Format.fprintf fmt "  fd %d <- %s@," fd name)
    t.fd_files;
  Format.fprintf fmt "@]"
