(** The [pinball_sysstate] tool: OS-state reconstruction for ELFies.

    An ELFie re-executes its region's system calls natively, so file
    descriptors that were open before the region, and file contents the
    region reads, must exist when it runs. This tool analyses a
    pinball's system-call log and reconstructs:

    - a {e proxy file} per file opened inside the region (content
      rebuilt solely from the logged [read] results, as in the paper);
    - a proxy file [FD_n] per descriptor that predates the region,
      to be re-opened and [dup2]'d to descriptor [n] by the ELFie's
      [elfie_on_start] callback;
    - [BRK.log], the first and last program-break values, used by the
      startup code to restore the heap layout. *)

type t = {
  files : (string * string) list;  (** proxy file name -> content *)
  fd_files : (int * string) list;  (** pre-region descriptor -> proxy name *)
  brk_start : int64;
  brk_end : int64;
}

(** Analyse a pinball's injection log. *)
val analyze : Elfie_pinball.Pinball.t -> t

(** Install the proxy files into a Vkernel filesystem under [workdir]
    (the [sysstate/workdir] directory of the paper): [FD_n] proxies and
    relative paths land in [workdir], absolute paths at their own
    location. *)
val install : t -> Elfie_kernel.Fs.t -> workdir:string -> unit

(** Serialize to a file set (for the on-disk [pinball.sysstate]
    directory): proxy files plus [BRK.log]. *)
val to_files : t -> (string * string) list

(** Rebuild from a file set; raises [Elfie_util.Diag.Error] on a missing
    or malformed [BRK.log]. [artifact] names the directory in
    diagnostics. *)
val of_files : ?artifact:string -> (string * string) list -> t

(** Non-raising variant of {!of_files}. *)
val of_files_result :
  ?artifact:string -> (string * string) list -> (t, Elfie_util.Diag.t) result

(** Write/read the sysstate directory on the real filesystem (slashes in
    proxy names are percent-encoded in file names). [load_dir] raises
    [Elfie_util.Diag.Error] on unreadable or malformed members. *)
val save : t -> dir:string -> unit

val load_dir : dir:string -> t

(** Non-raising variant of {!load_dir}. *)
val load_dir_result : dir:string -> (t, Elfie_util.Diag.t) result
val pp : Format.formatter -> t -> unit
