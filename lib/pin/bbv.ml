open Elfie_isa

type slice = {
  index : int;
  vector : (int64 * int) array;
  instructions : int64;
}

type profile = {
  slices : slice list;
  slice_size : int64;
  total_instructions : int64;
}

(* --- observability ------------------------------------------------------ *)

let m_slices =
  Elfie_obs.Metrics.counter "elfie_bbv_slices_total"
    ~help:"BBV slices emitted by profiling runs, by collector"

let m_instructions =
  Elfie_obs.Metrics.counter "elfie_bbv_instructions_total"
    ~help:"Instructions attributed to basic-block vectors, by collector"

let m_observer_calls =
  Elfie_obs.Metrics.counter "elfie_bbv_observer_calls_total"
    ~help:"Block-observer callbacks consumed by the block-driven collector"

(* --- shared accumulation state ------------------------------------------ *)

(* Block heads are interned to dense integer indices in an open-addressing
   table that persists across slices: the set of block heads a program
   touches is small and stable, so the per-slice work reduces to plain
   [int array] bumps with no boxed-int64 hashing on the hot path. The
   table is probed only when a thread starts a new block. *)

type state = {
  (* Interning table: [tbl_idx.(i) = -1] marks an empty slot; otherwise
     [tbl_keys.(i)] holds the full 64-bit head and [tbl_idx.(i)] its
     dense index. Hashing uses the head's low bits (where instruction
     addresses vary); collisions compare the full key. *)
  mutable tbl_keys : int64 array;
  mutable tbl_idx : int array;
  mutable tbl_mask : int;
  mutable n_blocks : int;
  mutable heads : int64 array;
  (* Per-slice accumulation: counts indexed by dense block index, plus a
     stack of indices touched this slice so reset is O(touched). *)
  mutable counts : int array;
  mutable touched : int array;
  mutable n_touched : int;
  (* Instruction counters are plain [int]s on the hot path (converted to
     int64 at the API edge): boxed-int64 arithmetic there would cost an
     allocation per executed block. *)
  mutable slice_icount : int;
  mutable total : int;
  mutable slices_rev : slice list;
  mutable next_index : int;
  (* Per-thread basic-block tracking (dense indices). *)
  mutable cur_idx : int array;
  mutable at_boundary : bool array;
  mutable observer_calls : int;
  slice_limit : int;
  slice_size : int64;
}

let make_state ~slice_size =
  {
    tbl_keys = Array.make 256 0L;
    tbl_idx = Array.make 256 (-1);
    tbl_mask = 255;
    n_blocks = 0;
    heads = Array.make 128 0L;
    counts = Array.make 128 0;
    touched = Array.make 128 0;
    n_touched = 0;
    slice_icount = 0;
    total = 0;
    slices_rev = [];
    next_index = 0;
    cur_idx = Array.make 8 0;
    at_boundary = Array.make 8 true;
    observer_calls = 0;
    slice_limit = Int64.to_int (Int64.min slice_size (Int64.of_int max_int));
    slice_size;
  }

let ensure_tid st tid =
  let n = Array.length st.cur_idx in
  if tid >= n then begin
    (* Geometric growth: amortised O(1) per new thread id. *)
    let cap = max (tid + 1) (2 * n) in
    let cur = Array.make cap 0 in
    let bnd = Array.make cap true in
    Array.blit st.cur_idx 0 cur 0 n;
    Array.blit st.at_boundary 0 bnd 0 n;
    st.cur_idx <- cur;
    st.at_boundary <- bnd
  end

let tbl_grow st =
  let cap = 2 * (st.tbl_mask + 1) in
  let keys = Array.make cap 0L in
  let idxs = Array.make cap (-1) in
  let mask = cap - 1 in
  Array.iteri
    (fun i idx ->
      if idx >= 0 then begin
        let k = st.tbl_keys.(i) in
        let j = ref (Int64.to_int k * 0x5DEECE66D land mask) in
        while idxs.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        keys.(!j) <- k;
        idxs.(!j) <- idx
      end)
    st.tbl_idx;
  st.tbl_keys <- keys;
  st.tbl_idx <- idxs;
  st.tbl_mask <- mask

let dense_grow st =
  let cap = 2 * Array.length st.heads in
  let heads = Array.make cap 0L in
  let counts = Array.make cap 0 in
  let touched = Array.make cap 0 in
  Array.blit st.heads 0 heads 0 st.n_blocks;
  Array.blit st.counts 0 counts 0 st.n_blocks;
  Array.blit st.touched 0 touched 0 st.n_touched;
  st.heads <- heads;
  st.counts <- counts;
  st.touched <- touched

(* Map a block head to its dense index, interning it on first sight. *)
let intern st block =
  let mask = st.tbl_mask in
  let i = ref (Int64.to_int block * 0x5DEECE66D land mask) in
  let res = ref (-1) in
  while !res < 0 do
    let idx = st.tbl_idx.(!i) in
    if idx >= 0 then
      if Int64.equal st.tbl_keys.(!i) block then res := idx
      else i := (!i + 1) land mask
    else begin
      (* New block head: install at the probe position. *)
      let idx = st.n_blocks in
      if idx >= Array.length st.heads then dense_grow st;
      st.heads.(idx) <- block;
      st.tbl_keys.(!i) <- block;
      st.tbl_idx.(!i) <- idx;
      st.n_blocks <- idx + 1;
      (* Keep load factor at most 1/2 so probe chains stay short. *)
      if 2 * st.n_blocks > mask then tbl_grow st;
      res := idx
    end
  done;
  !res

(* Charge [by] instructions to the dense block index [idx] in the current
   slice: an array bump, plus a push on first touch so the per-slice
   reset only walks blocks that actually ran. *)
let bump st idx by =
  let c = st.counts.(idx) in
  if c = 0 then begin
    st.touched.(st.n_touched) <- idx;
    st.n_touched <- st.n_touched + 1
  end;
  st.counts.(idx) <- c + by

let finish_slice st =
  let pairs =
    Array.init st.n_touched (fun j ->
        let i = st.touched.(j) in
        (st.heads.(i), st.counts.(i)))
  in
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) pairs;
  st.slices_rev <-
    {
      index = st.next_index;
      vector = pairs;
      instructions = Int64.of_int st.slice_icount;
    }
    :: st.slices_rev;
  st.next_index <- st.next_index + 1;
  for j = 0 to st.n_touched - 1 do
    st.counts.(st.touched.(j)) <- 0
  done;
  st.n_touched <- 0;
  st.slice_icount <- 0

let finish ~collector st =
  if st.slice_icount > 0 then finish_slice st;
  let labels = [ ("collector", collector) ] in
  Elfie_obs.Metrics.inc m_slices ~labels ~by:(float_of_int st.next_index);
  Elfie_obs.Metrics.inc m_instructions ~labels ~by:(float_of_int st.total);
  if st.observer_calls > 0 then
    Elfie_obs.Metrics.inc m_observer_calls ~by:(float_of_int st.observer_calls);
  {
    slices = List.rev st.slices_rev;
    slice_size = st.slice_size;
    total_instructions = Int64.of_int st.total;
  }

(* --- per-instruction reference tool ------------------------------------- *)

let tool ~slice_size =
  let st = make_state ~slice_size in
  let on_ins tid pc ins =
    ensure_tid st tid;
    if st.at_boundary.(tid) then begin
      st.cur_idx.(tid) <- intern st pc;
      st.at_boundary.(tid) <- false
    end;
    bump st st.cur_idx.(tid) 1;
    (match Insn.classify ins with
    | Insn.K_branch | K_call | K_syscall -> st.at_boundary.(tid) <- true
    | K_alu | K_load | K_store | K_vector | K_other -> ());
    st.slice_icount <- st.slice_icount + 1;
    st.total <- st.total + 1;
    if st.slice_icount >= st.slice_limit then finish_slice st
  in
  let t = { (Pintool.empty ~name:"bbv") with on_ins = Some on_ins } in
  (t, fun () -> finish ~collector:"ins" st)

(* --- block-driven collector --------------------------------------------- *)

(* One observer call reports a straight-line run of [n] instructions from a
   translated block's head: every instruction charges to the same block
   head (only the run's last instruction can be a block terminator), and
   thread interleaving only happens between calls. So a call is exactly
   equivalent to [n] per-instruction [on_ins] events for that thread, and
   the only per-instruction work left is splitting the charge where a
   slice boundary falls inside the run. *)
let collector ~slice_size =
  let st = make_state ~slice_size in
  let observe ~tid ~pcs ~n ~ends_block =
    if n > 0 then begin
      if tid >= Array.length st.cur_idx then ensure_tid st tid;
      st.observer_calls <- st.observer_calls + 1;
      st.total <- st.total + n;
      if st.at_boundary.(tid) then begin
        (* A fresh block; otherwise the run continues a block that was
           interrupted (quantum end, fault, timer) and its instructions
           keep charging to the interrupted block's head. *)
        st.cur_idx.(tid) <- intern st pcs.(0);
        st.at_boundary.(tid) <- false
      end;
      let idx = st.cur_idx.(tid) in
      let filled = st.slice_icount + n in
      if filled < st.slice_limit then begin
        (* Fast path: the whole run lands inside the current slice. *)
        st.slice_icount <- filled;
        bump st idx n
      end
      else begin
        (* A slice boundary falls inside (or at the end of) the run:
           split the charge across slices exactly where the per-ins tool
           would, one piece per slice touched. *)
        let remaining = ref n in
        while !remaining > 0 do
          let room = max 1 (st.slice_limit - st.slice_icount) in
          let m = if !remaining <= room then !remaining else room in
          bump st idx m;
          st.slice_icount <- st.slice_icount + m;
          remaining := !remaining - m;
          if st.slice_icount >= st.slice_limit then finish_slice st
        done
      end;
      if ends_block then st.at_boundary.(tid) <- true
    end
  in
  (observe, fun () -> finish ~collector:"block" st)

(* --- profiling runs ------------------------------------------------------ *)

let profile ?max_ins spec ~slice_size =
  Elfie_obs.Trace.with_span "bbv.collect" @@ fun sp ->
  let machine, _kernel = Run.instantiate spec in
  let observe, finish = collector ~slice_size in
  (* The machine has a single block-observer slot; keep [--profile]
     working by chaining the global profiler in front of the collector. *)
  let observer =
    match Elfie_obs.Profile.global () with
    | None -> observe
    | Some p ->
        fun ~tid ~pcs ~n ~ends_block ->
          Elfie_obs.Profile.note_block p ~tid ~pcs ~n ~ends_block;
          observe ~tid ~pcs ~n ~ends_block
  in
  Elfie_machine.Machine.set_block_observer machine (Some observer);
  Elfie_machine.Machine.run ?max_ins machine;
  Elfie_machine.Machine.set_block_observer machine None;
  let p = finish () in
  Elfie_obs.Trace.add_attr sp "slices"
    (Elfie_obs.Trace.I (Int64.of_int (List.length p.slices)));
  Elfie_obs.Trace.add_attr sp "instructions"
    (Elfie_obs.Trace.I p.total_instructions);
  p

let profile_per_ins ?max_ins spec ~slice_size =
  let machine, _kernel = Run.instantiate spec in
  let t, finish = tool ~slice_size in
  let detach = Pintool.attach machine [ t ] in
  Elfie_machine.Machine.run ?max_ins machine;
  detach ();
  finish ()
