open Elfie_isa

type 'a analysis = { tool : Pintool.t; result : unit -> 'a }

(* Shared gating: enablement at the first marker, stop after [limit]
   analysed instructions. Returns (enabled-check-and-count, marker hook). *)
type gate = {
  mutable g_enabled : bool;
  mutable g_count : int64;
  g_limit : int64 option;
}

let make_gate ~from_marker ~limit =
  { g_enabled = not from_marker; g_count = 0L; g_limit = limit }

let gate_tick g =
  if not g.g_enabled then false
  else
    match g.g_limit with
    | Some l when g.g_count >= l -> false
    | Some _ | None ->
        g.g_count <- Int64.add g.g_count 1L;
        true

let gate_active g =
  g.g_enabled
  && match g.g_limit with Some l -> g.g_count < l | None -> true

let klass_name = function
  | Insn.K_alu -> "alu"
  | K_load -> "load"
  | K_store -> "store"
  | K_branch -> "branch"
  | K_call -> "call"
  | K_syscall -> "syscall"
  | K_vector -> "vector"
  | K_other -> "other"

(* --- instruction mix -------------------------------------------------------- *)

type mix = { mix_total : int64; mix_classes : (string * int64) list }

let instruction_mix ?(from_marker = false) ?limit () =
  let gate = make_gate ~from_marker ~limit in
  let counts : (string, int64 ref) Hashtbl.t = Hashtbl.create 8 in
  let on_ins _ _ ins =
    if gate_tick gate then begin
      let k = klass_name (Insn.classify ins) in
      match Hashtbl.find_opt counts k with
      | Some r -> r := Int64.add !r 1L
      | None -> Hashtbl.replace counts k (ref 1L)
    end
  in
  let tool =
    {
      (Pintool.empty ~name:"insmix") with
      on_ins = Some on_ins;
      on_marker = Some (fun _ _ -> gate.g_enabled <- true);
    }
  in
  let result () =
    let classes =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)
    in
    { mix_total = gate.g_count; mix_classes = classes }
  in
  { tool; result }

(* --- memory footprint --------------------------------------------------------- *)

type footprint = {
  fp_pages : int;
  fp_lines : int;
  fp_reads : int64;
  fp_writes : int64;
  fp_bytes_read : int64;
  fp_bytes_written : int64;
}

let memory_footprint ?(from_marker = false) ?limit () =
  let gate = make_gate ~from_marker ~limit in
  let pages = Hashtbl.create 256 in
  let lines = Hashtbl.create 1024 in
  let reads = ref 0L and writes = ref 0L in
  let bytes_read = ref 0L and bytes_written = ref 0L in
  let touch addr =
    Hashtbl.replace pages (Int64.shift_right_logical addr 12) ();
    Hashtbl.replace lines (Int64.shift_right_logical addr 6) ()
  in
  let tool =
    {
      (Pintool.empty ~name:"footprint") with
      on_ins = Some (fun _ _ _ -> ignore (gate_tick gate));
      on_marker = Some (fun _ _ -> gate.g_enabled <- true);
      on_mem_read =
        Some
          (fun _ addr w ->
            if gate_active gate then begin
              touch addr;
              reads := Int64.add !reads 1L;
              bytes_read := Int64.add !bytes_read (Int64.of_int w)
            end);
      on_mem_write =
        Some
          (fun _ addr w ->
            if gate_active gate then begin
              touch addr;
              writes := Int64.add !writes 1L;
              bytes_written := Int64.add !bytes_written (Int64.of_int w)
            end);
    }
  in
  let result () =
    {
      fp_pages = Hashtbl.length pages;
      fp_lines = Hashtbl.length lines;
      fp_reads = !reads;
      fp_writes = !writes;
      fp_bytes_read = !bytes_read;
      fp_bytes_written = !bytes_written;
    }
  in
  { tool; result }

(* --- branch profile ------------------------------------------------------------ *)

type branch_profile = {
  br_executed : int64;
  br_taken : int64;
  br_hottest : (int64 * int) list;
}

let top_n n tbl =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let branch_profile ?(from_marker = false) ?limit () =
  let gate = make_gate ~from_marker ~limit in
  let executed = ref 0L and taken = ref 0L in
  let sites : (int64, int ref) Hashtbl.t = Hashtbl.create 256 in
  let tool =
    {
      (Pintool.empty ~name:"branchprof") with
      on_ins = Some (fun _ _ _ -> ignore (gate_tick gate));
      on_marker = Some (fun _ _ -> gate.g_enabled <- true);
      on_branch =
        Some
          (fun _ pc _ was_taken ->
            if gate_active gate then begin
              executed := Int64.add !executed 1L;
              if was_taken then taken := Int64.add !taken 1L;
              match Hashtbl.find_opt sites pc with
              | Some r -> incr r
              | None -> Hashtbl.replace sites pc (ref 1)
            end);
    }
  in
  let result () =
    { br_executed = !executed; br_taken = !taken; br_hottest = top_n 10 sites }
  in
  { tool; result }

(* --- block profile ------------------------------------------------------------- *)

type block_profile = { bb_blocks : int; bb_hottest : (int64 * int) list }

let block_profile ?(from_marker = false) ?limit () =
  let gate = make_gate ~from_marker ~limit in
  let heads : (int64, int ref) Hashtbl.t = Hashtbl.create 256 in
  let at_boundary = ref true in
  let tool =
    {
      (Pintool.empty ~name:"bbprof") with
      on_marker = Some (fun _ _ -> gate.g_enabled <- true);
      on_ins =
        Some
          (fun _ pc ins ->
            if gate_tick gate then begin
              if !at_boundary then begin
                (match Hashtbl.find_opt heads pc with
                | Some r -> incr r
                | None -> Hashtbl.replace heads pc (ref 1));
                at_boundary := false
              end;
              match Insn.classify ins with
              | Insn.K_branch | K_call | K_syscall -> at_boundary := true
              | K_alu | K_load | K_store | K_vector | K_other -> ()
            end);
    }
  in
  let result () =
    { bb_blocks = Hashtbl.length heads; bb_hottest = top_n 10 heads }
  in
  { tool; result }

(* --- hot-region profiler adapter -------------------------------------------- *)

let profile_tool p =
  let on_ins tid pc ins =
    let block_end =
      match Insn.classify ins with
      | Insn.K_branch | K_call | K_syscall -> true
      | K_alu | K_load | K_store | K_vector | K_other -> false
    in
    Elfie_obs.Profile.note p ~tid ~pc ~block_end
  in
  { (Pintool.empty ~name:"obs-profile") with on_ins = Some on_ins }

(* Attach the global profiler, if one is installed. Every execution
   front-end (native runner, replayer, simulators' machines) calls this
   after building its machine so `--profile` observes any run.

   Wired through the machine's block observer rather than an [on_ins]
   hook: the observer is fed whole straight-line runs on the hook-free
   translated-block path, so profiling no longer forces the
   per-instruction slow path, and [Profile.note_block] reproduces
   per-instruction feeding state-for-state. *)
let attach_global_profile machine =
  match Elfie_obs.Profile.global () with
  | None -> ()
  | Some p ->
      Elfie_machine.Machine.set_block_observer machine
        (Some
           (fun ~tid ~pcs ~n ~ends_block ->
             Elfie_obs.Profile.note_block p ~tid ~pcs ~n ~ends_block))

(* --- printers -------------------------------------------------------------------- *)

let pp_mix fmt m =
  Format.fprintf fmt "@[<v>instruction mix over %Ld instructions:@," m.mix_total;
  List.iter
    (fun (k, n) ->
      Format.fprintf fmt "  %-8s %10Ld (%.1f%%)@," k n
        (100.0 *. Int64.to_float n /. Float.max 1.0 (Int64.to_float m.mix_total)))
    m.mix_classes;
  Format.fprintf fmt "@]"

let pp_footprint fmt f =
  Format.fprintf fmt
    "@[<v>memory footprint: %d pages, %d cache lines@,\
     reads: %Ld (%Ld bytes)  writes: %Ld (%Ld bytes)@]"
    f.fp_pages f.fp_lines f.fp_reads f.fp_bytes_read f.fp_writes f.fp_bytes_written

let pp_branch_profile fmt b =
  Format.fprintf fmt "@[<v>branches: %Ld executed, %Ld taken (%.1f%%)@,"
    b.br_executed b.br_taken
    (100.0 *. Int64.to_float b.br_taken /. Float.max 1.0 (Int64.to_float b.br_executed));
  List.iter
    (fun (pc, n) -> Format.fprintf fmt "  0x%Lx: %d@," pc n)
    b.br_hottest;
  Format.fprintf fmt "@]"

let pp_block_profile fmt b =
  Format.fprintf fmt "@[<v>%d basic blocks; hottest:@," b.bb_blocks;
  List.iter (fun (pc, n) -> Format.fprintf fmt "  0x%Lx: %d@," pc n) b.bb_hottest;
  Format.fprintf fmt "@]"
