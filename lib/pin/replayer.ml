open Elfie_machine
open Elfie_kernel
open Elfie_pinball

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

type mode =
  | Constrained
  | Injectionless of { seed : int64; fs_init : Fs.t -> unit }

let m_replays =
  Metrics.counter "elfie_replays_total" ~help:"Pinball replays, by mode"

let m_syscalls_replayed =
  Metrics.counter "elfie_syscalls_replayed_total"
    ~help:"Recorded syscalls consumed during constrained replay, by kind \
           (injected = result written back, reexecuted = run natively)"

let m_divergences =
  Metrics.counter "elfie_replay_divergences_total"
    ~help:"Divergences detected during replay"

type divergence = {
  div_tid : int;
  div_pc : int64;
  div_icount : int64;
  div_what : string;
}

type result = {
  per_thread_retired : int64 array;
  matched_icounts : bool;
  divergences : int;
  first_divergence : divergence option;
  capped : bool;
  retired : int64;
  cycles : int64;
  stdout : string;
}

let materialize ?(constrained = true) ?(seed = 7L) ?(fs_init = fun _ -> ())
    (pb : Pinball.t) =
  let scheduler =
    if constrained then Machine.Recorded pb.schedule
    else Machine.Free { seed; quantum_min = 50; quantum_max = 200 }
  in
  let machine = Machine.create scheduler in
  (* Initial memory image. *)
  List.iter (fun (addr, data) -> Addr_space.store (Machine.mem machine) addr data)
    pb.pages;
  (* Threads at region start, in tid order. *)
  Array.iter
    (fun ctx -> ignore (Machine.add_thread machine (Context.copy ctx)))
    pb.contexts;
  (* Kernel for re-executed syscalls (and everything, when injectionless). *)
  let fs = Fs.create () in
  fs_init fs;
  let kernel = Vkernel.create ~config:{ Vkernel.default_config with seed } fs in
  Vkernel.install kernel machine;
  Vkernel.force_brk kernel pb.brk;
  let divergences = ref 0 in
  let first_div = ref None in
  let diverge m tid what =
    incr divergences;
    Metrics.inc m_divergences;
    if !first_div = None then begin
      let th = Machine.thread m tid in
      first_div :=
        Some
          {
            div_tid = tid;
            div_pc = th.Machine.ctx.Context.rip;
            div_icount = th.Machine.retired;
            div_what = what;
          }
    end
  in
  if constrained then begin
    let queues = Array.map (fun l -> ref l) pb.injections in
    Machine.set_syscall_filter machine (fun m tid ->
        let actual_nr =
          Int64.to_int (Context.get (Machine.thread m tid).Machine.ctx Elfie_isa.Reg.RAX)
        in
        if tid >= Array.length queues then begin
          diverge m tid
            (Printf.sprintf "syscall %d from unrecorded thread" actual_nr);
          Machine.Run_syscall
        end
        else
          match !(queues.(tid)) with
          | [] ->
              diverge m tid
                (Printf.sprintf "syscall %d beyond the recorded log" actual_nr);
              Machine.Run_syscall
          | entry :: rest ->
              queues.(tid) := rest;
              if entry.Pinball.sys_nr <> actual_nr then
                diverge m tid
                  (Printf.sprintf "syscall %d where the log recorded %d"
                     actual_nr entry.Pinball.sys_nr);
              if entry.sys_reexec then begin
                Metrics.inc m_syscalls_replayed
                  ~labels:[ ("kind", "reexecuted") ];
                Machine.Run_syscall
              end
              else begin
                Metrics.inc m_syscalls_replayed ~labels:[ ("kind", "injected") ];
                (* Inject: result register plus kernel memory effects. *)
                let ctx = (Machine.thread m tid).Machine.ctx in
                Context.set ctx Elfie_isa.Reg.RAX entry.sys_ret;
                List.iter
                  (fun (addr, data) ->
                    Addr_space.store (Machine.mem m) addr (Bytes.of_string data))
                  entry.sys_writes;
                Machine.Skip_syscall
              end)
  end;
  (machine, kernel, fun () -> (!divergences, !first_div))

let replay ?(mode = Constrained) ?max_ins (pb : Pinball.t) =
  let constrained, seed, fs_init =
    match mode with
    | Constrained -> (true, 7L, fun _ -> ())
    | Injectionless { seed; fs_init } -> (false, seed, fs_init)
  in
  let mode_name = if constrained then "constrained" else "injectionless" in
  Metrics.inc m_replays ~labels:[ ("mode", mode_name) ];
  let sp =
    Trace.begin_span ("replay." ^ mode_name)
      ~attrs:[ ("threads", Trace.I (Int64.of_int (Array.length pb.contexts))) ]
  in
  let machine, kernel, div_state = materialize ~constrained ~seed ~fs_init pb in
  Tools.attach_global_profile machine;
  let cap =
    (* Injection-less replay always needs a cap (free scheduling can
       spin forever past a divergence); a caller-supplied cap also
       bounds constrained replay, whose recorded schedule can wedge on
       a divergent syscall log. *)
    match max_ins with
    | Some _ -> max_ins
    | None ->
        if constrained then None
        else Some (Int64.mul 3L (max 1L (Pinball.total_icount pb)))
  in
  if not constrained then
    (* Mimic the ELFie hardware-counter exit: stop each region-start
       thread at its recorded instruction count. *)
    Array.iteri (fun tid target -> Machine.arm_counter machine tid ~target) pb.icounts;
  Machine.run ?max_ins:cap machine;
  let capped =
    match cap with
    | Some l -> Machine.total_retired machine >= l
    | None -> false
  in
  let per_thread_retired =
    Array.of_list (List.map (fun th -> th.Machine.retired) (Machine.threads machine))
  in
  let matched_icounts =
    Array.length per_thread_retired >= Array.length pb.icounts
    && Array.for_all
         (fun i -> per_thread_retired.(i) = pb.icounts.(i))
         (Array.init (Array.length pb.icounts) (fun i -> i))
  in
  let divergences, first_divergence = div_state () in
  (* An icount mismatch with no syscall-level divergence still pins the
     first offending thread: report where it stopped. *)
  let first_divergence =
    if first_divergence <> None || matched_icounts then first_divergence
    else
      Array.to_list
        (Array.init (Array.length pb.icounts) (fun i -> i))
      |> List.find_map (fun tid ->
             let recorded = pb.icounts.(tid) in
             let actual =
               if tid < Array.length per_thread_retired then
                 per_thread_retired.(tid)
               else 0L
             in
             if actual = recorded then None
             else
               let pc =
                 if tid < Array.length per_thread_retired then
                   (Machine.thread machine tid).Machine.ctx.Context.rip
                 else 0L
               in
               Some
                 {
                   div_tid = tid;
                   div_pc = pc;
                   div_icount = actual;
                   div_what =
                     Printf.sprintf "retired %Ld instructions, recorded %Ld"
                       actual recorded;
                 })
  in
  let result =
    {
      per_thread_retired;
      matched_icounts;
      divergences;
      first_divergence;
      capped;
      retired = Machine.total_retired machine;
      cycles = Machine.elapsed_cycles machine;
      stdout = Vkernel.stdout_contents kernel;
    }
  in
  Trace.end_span sp
    ~attrs:
      [
        ("retired", Trace.I result.retired);
        ("matched_icounts", Trace.B result.matched_icounts);
        ("divergences", Trace.I (Int64.of_int result.divergences));
        ("capped", Trace.B result.capped);
      ];
  result
