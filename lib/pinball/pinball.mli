(** Pinballs: user-level region checkpoints, the PinPlay container.

    A pinball captures everything needed to replay a region of one
    process's execution: the initial memory image (the [.text] file,
    shared by all threads), per-thread architectural registers at region
    start (the [.reg] files), the system-call side-effect log used for
    injection during replay (the [.inj] file), the recorded thread
    schedule (the [.order] file) and region metadata (the [.global.log]
    file).

    [fat] pinballs additionally carry {e every} page mapped at region
    start, not only the pages the region touches — the
    [-log:whole_image -log:pages_early] combination the paper added to
    PinPlay so that pinball2elf has a complete image to convert. *)

(** One logged system call, in per-thread program order. *)
type syscall_entry = {
  sys_nr : int;
  sys_args : int64 array;  (** the six argument registers *)
  sys_path : string option;  (** decoded path for open(2), used by sysstate *)
  sys_ret : int64;
  sys_writes : (int64 * string) list;
      (** memory the kernel wrote, to re-inject at replay *)
  sys_reexec : bool;
      (** structural call (mmap/brk/clone/...): re-executed, not injected *)
}

type t = {
  name : string;
  fat : bool;
  contexts : Elfie_machine.Context.t array;  (** per thread, at region start *)
  pages : (int64 * bytes) list;  (** initial memory image, sorted *)
  icounts : int64 array;  (** per-thread instructions inside the region *)
  schedule : (int * int) list;  (** recorded (tid, instruction-count) slices *)
  injections : syscall_entry list array;  (** per-thread syscall logs *)
  brk : int64;  (** program break at region start *)
  symbols : (string * int64) list;
      (** application symbols carried over from the original binary, so
          generated ELFies support symbolic debugging (the paper's
          proposed extension) *)
}

val num_threads : t -> int

(** Aggregate region length over all threads. *)
val total_icount : t -> int64

(** Total bytes of memory image. *)
val image_bytes : t -> int

(** Serialize to the pinball file set: [(file-suffix, contents)] pairs,
    e.g. [("text", ...); ("0.reg", ...); ...]. The suffixes follow
    PinPlay naming. *)
val to_files : t -> (string * string) list

(** Rebuild from the file set. Malformed or missing members raise
    [Elfie_util.Diag.Error] carrying the member name, the error code and
    the byte offset of the offending field. *)
val of_files : name:string -> (string * string) list -> t

(** Non-raising variant of {!of_files}. [dir], when given, is only used
    to report full artifact paths in diagnostics. *)
val of_files_result :
  ?dir:string ->
  name:string ->
  (string * string) list ->
  (t, Elfie_util.Diag.t) result

(** Write/read a pinball as [dir/name.<suffix>] files on the real
    filesystem. [load] raises [Elfie_util.Diag.Error] on missing or
    malformed members; diagnostics name the full on-disk path. *)
val save : t -> dir:string -> unit

val load : dir:string -> name:string -> t

(** Non-raising variant of {!load}. *)
val load_result : dir:string -> name:string -> (t, Elfie_util.Diag.t) result

(** Structural equality (for round-trip tests). *)
val equal : t -> t -> bool

val pp_summary : Format.formatter -> t -> unit
