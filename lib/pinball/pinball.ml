open Elfie_util

type syscall_entry = {
  sys_nr : int;
  sys_args : int64 array;
  sys_path : string option;
  sys_ret : int64;
  sys_writes : (int64 * string) list;
  sys_reexec : bool;
}

type t = {
  name : string;
  fat : bool;
  contexts : Elfie_machine.Context.t array;
  pages : (int64 * bytes) list;
  icounts : int64 array;
  schedule : (int * int) list;
  injections : syscall_entry list array;
  brk : int64;
  symbols : (string * int64) list;
}

let num_threads t = Array.length t.contexts

let total_icount t = Array.fold_left Int64.add 0L t.icounts

let image_bytes t =
  List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.pages

(* --- Serialization ------------------------------------------------------ *)

let text_magic = 0x56585054 (* "TPXV" *)
let global_magic = 0x56584c47
let inj_magic = 0x56584a49
let order_magic = 0x5658524f

let write_text t =
  let w = Byteio.Writer.create ~capacity:(image_bytes t + 64) () in
  Byteio.Writer.u32 w text_magic;
  Byteio.Writer.u32 w (List.length t.pages);
  List.iter
    (fun (addr, data) ->
      Byteio.Writer.u64 w addr;
      Byteio.Writer.u32 w (Bytes.length data);
      Byteio.Writer.bytes w data)
    t.pages;
  Bytes.to_string (Byteio.Writer.contents w)

let write_global t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w global_magic;
  Byteio.Writer.u8 w (if t.fat then 1 else 0);
  Byteio.Writer.u32 w (Array.length t.contexts);
  Array.iter (Byteio.Writer.u64 w) t.icounts;
  Byteio.Writer.u64 w t.brk;
  Byteio.Writer.u32 w (List.length t.symbols);
  List.iter
    (fun (name, value) ->
      Byteio.Writer.u32 w (String.length name);
      Byteio.Writer.string w name;
      Byteio.Writer.u64 w value)
    t.symbols;
  Bytes.to_string (Byteio.Writer.contents w)

let write_inj t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w inj_magic;
  Byteio.Writer.u32 w (Array.length t.injections);
  Array.iter
    (fun entries ->
      Byteio.Writer.u32 w (List.length entries);
      List.iter
        (fun e ->
          Byteio.Writer.u32 w e.sys_nr;
          Array.iter (Byteio.Writer.u64 w) e.sys_args;
          (match e.sys_path with
          | Some p ->
              Byteio.Writer.u32 w (String.length p);
              Byteio.Writer.string w p
          | None -> Byteio.Writer.u32 w 0xffff_ffff);
          Byteio.Writer.u64 w e.sys_ret;
          Byteio.Writer.u8 w (if e.sys_reexec then 1 else 0);
          Byteio.Writer.u32 w (List.length e.sys_writes);
          List.iter
            (fun (addr, data) ->
              Byteio.Writer.u64 w addr;
              Byteio.Writer.u32 w (String.length data);
              Byteio.Writer.string w data)
            e.sys_writes)
        entries)
    t.injections;
  Bytes.to_string (Byteio.Writer.contents w)

let write_order t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w order_magic;
  Byteio.Writer.u32 w (List.length t.schedule);
  List.iter
    (fun (tid, n) ->
      Byteio.Writer.u32 w tid;
      Byteio.Writer.u32 w n)
    t.schedule;
  Bytes.to_string (Byteio.Writer.contents w)

(* --- Deserialization ----------------------------------------------------

   Every member reader reports malformed input as a structured
   [Diag.t]: magic/count checks raise [Diag.Error] directly; cursor
   exhaustion inside Byteio surfaces as [Truncated] and is converted at
   the member boundary. Count fields are checked against the bytes
   actually present before any allocation, so an oversized count in a
   corrupt file is a diagnostic, not a gigantic allocation or a hang. *)

let expect_magic r ~artifact ~what expected =
  let off = Byteio.Reader.pos r in
  let m = Byteio.Reader.u32 r in
  if m <> expected then
    Diag.fail ~offset:off ~artifact Diag.Bad_magic
      "bad %s magic 0x%08x (expected 0x%08x)" what m expected

(* A count of entries each at least [entry_min] bytes long. *)
let read_count r ~artifact ~what ~entry_min =
  let off = Byteio.Reader.pos r in
  let n = Byteio.Reader.u32 r in
  if n * entry_min > Byteio.Reader.remaining r then
    Diag.fail ~offset:off ~artifact Diag.Count_out_of_range
      "%s count %d cannot fit in the %d bytes that follow" what n
      (Byteio.Reader.remaining r);
  n

let finish r ~artifact =
  if Byteio.Reader.remaining r > 0 then
    Diag.fail ~offset:(Byteio.Reader.pos r) ~artifact Diag.Malformed
      "%d trailing bytes after the last field" (Byteio.Reader.remaining r)

(* Run a member parser, converting cursor exhaustion to a diagnostic. *)
let parse ~artifact fn s =
  let r = Byteio.Reader.of_string s in
  match fn r with
  | v ->
      finish r ~artifact;
      v
  | exception Byteio.Truncated msg ->
      Diag.fail ~offset:(Byteio.Reader.pos r) ~artifact Diag.Truncated "%s" msg

let read_text ~artifact s =
  parse ~artifact
    (fun r ->
      expect_magic r ~artifact ~what:".text" text_magic;
      let n = read_count r ~artifact ~what:"page" ~entry_min:12 in
      List.init n (fun _ ->
          let addr = Byteio.Reader.u64 r in
          let len = read_count r ~artifact ~what:"page length" ~entry_min:1 in
          (addr, Byteio.Reader.bytes r len)))
    s

let read_global ~artifact s =
  parse ~artifact
    (fun r ->
      expect_magic r ~artifact ~what:".global.log" global_magic;
      let fat_off = Byteio.Reader.pos r in
      let fat_byte = Byteio.Reader.u8 r in
      if fat_byte > 1 then
        Diag.fail ~offset:fat_off ~artifact Diag.Malformed
          "fat flag is %d (expected 0 or 1)" fat_byte;
      let fat = fat_byte = 1 in
      let n = read_count r ~artifact ~what:"thread" ~entry_min:8 in
      let icounts = Array.init n (fun _ -> Byteio.Reader.u64 r) in
      let brk = Byteio.Reader.u64 r in
      let nsyms = read_count r ~artifact ~what:"symbol" ~entry_min:12 in
      let symbols =
        List.init nsyms (fun _ ->
            let len = read_count r ~artifact ~what:"symbol name" ~entry_min:1 in
            let name = Byteio.Reader.string_n r len in
            (name, Byteio.Reader.u64 r))
      in
      (fat, icounts, brk, symbols))
    s

let read_inj ~artifact s =
  parse ~artifact
    (fun r ->
      expect_magic r ~artifact ~what:".inj" inj_magic;
      let threads = read_count r ~artifact ~what:"thread" ~entry_min:4 in
      Array.init threads (fun _ ->
          let n = read_count r ~artifact ~what:"injection entry" ~entry_min:69 in
          List.init n (fun _ ->
              let sys_nr = Byteio.Reader.u32 r in
              let sys_args = Array.init 6 (fun _ -> Byteio.Reader.u64 r) in
              let sys_path =
                let off = Byteio.Reader.pos r in
                let len = Byteio.Reader.u32 r in
                if len = 0xffff_ffff then None
                else if len > Byteio.Reader.remaining r then
                  Diag.fail ~offset:off ~artifact Diag.Count_out_of_range
                    "path length %d exceeds %d remaining bytes" len
                    (Byteio.Reader.remaining r)
                else Some (Byteio.Reader.string_n r len)
              in
              let sys_ret = Byteio.Reader.u64 r in
              let sys_reexec = Byteio.Reader.u8 r = 1 in
              let nw = read_count r ~artifact ~what:"kernel write" ~entry_min:12 in
              let sys_writes =
                List.init nw (fun _ ->
                    let addr = Byteio.Reader.u64 r in
                    let len =
                      read_count r ~artifact ~what:"write length" ~entry_min:1
                    in
                    (addr, Byteio.Reader.string_n r len))
              in
              { sys_nr; sys_args; sys_path; sys_ret; sys_writes; sys_reexec })))
    s

let read_order ~artifact s =
  parse ~artifact
    (fun r ->
      expect_magic r ~artifact ~what:".order" order_magic;
      let n = read_count r ~artifact ~what:"schedule slice" ~entry_min:8 in
      List.init n (fun _ ->
          let tid = Byteio.Reader.u32 r in
          (tid, Byteio.Reader.u32 r)))
    s

let read_reg ~artifact s =
  match Elfie_machine.Context.of_bytes (Bytes.of_string s) with
  | ctx -> ctx
  | exception Byteio.Truncated msg ->
      Diag.fail ~artifact Diag.Truncated "register file too short: %s" msg

let to_files t =
  let regs =
    Array.to_list
      (Array.mapi
         (fun i ctx ->
           (Printf.sprintf "%d.reg" i,
            Bytes.to_string (Elfie_machine.Context.to_bytes ctx)))
         t.contexts)
  in
  [ ("text", write_text t); ("global.log", write_global t);
    ("inj", write_inj t); ("order", write_order t) ]
  @ regs

let member_path ?dir ~name suffix =
  let file = name ^ "." ^ suffix in
  match dir with Some d -> Filename.concat d file | None -> file

let of_files_exn ?dir ~name files =
  let get suffix =
    match List.assoc_opt suffix files with
    | Some s -> s
    | None ->
        Diag.fail ~artifact:(member_path ?dir ~name suffix) Diag.Missing_file
          "pinball %S in %s is missing its %s member (expected file %s)" name
          (Option.value ~default:"<memory>" dir)
          suffix
          (member_path ?dir ~name suffix)
  in
  let art suffix = member_path ?dir ~name suffix in
  let fat, icounts, brk, symbols =
    read_global ~artifact:(art "global.log") (get "global.log")
  in
  let n = Array.length icounts in
  let contexts =
    Array.init n (fun i ->
        let suffix = Printf.sprintf "%d.reg" i in
        read_reg ~artifact:(art suffix) (get suffix))
  in
  {
    name;
    fat;
    contexts;
    pages = read_text ~artifact:(art "text") (get "text");
    icounts;
    schedule = read_order ~artifact:(art "order") (get "order");
    injections = read_inj ~artifact:(art "inj") (get "inj");
    brk;
    symbols;
  }

let of_files ~name files = of_files_exn ~name files

let of_files_result ?dir ~name files =
  Diag.protect (fun () -> of_files_exn ?dir ~name files)

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (suffix, content) ->
      let path = Filename.concat dir (t.name ^ "." ^ suffix) in
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc)
    (to_files t)

let load_exn ~dir ~name =
  let read_file suffix =
    let path = member_path ~dir ~name suffix in
    if Sys.file_exists path then begin
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | s -> Some (suffix, s)
      | exception Sys_error msg ->
          Diag.fail ~artifact:path Diag.Io_error "%s" msg
    end
    else None
  in
  let n_threads =
    match read_file "global.log" with
    | Some (_, s) ->
        let _, icounts, _, _ =
          read_global ~artifact:(member_path ~dir ~name "global.log") s
        in
        Array.length icounts
    | None ->
        Diag.fail
          ~artifact:(member_path ~dir ~name "global.log")
          Diag.Missing_file "no pinball named %S in %s (expected file %s)" name
          dir
          (member_path ~dir ~name "global.log")
  in
  let suffixes =
    [ "text"; "global.log"; "inj"; "order" ]
    @ List.init n_threads (Printf.sprintf "%d.reg")
  in
  of_files_exn ~dir ~name (List.filter_map read_file suffixes)

let load ~dir ~name = load_exn ~dir ~name

let load_result ~dir ~name = Diag.protect (fun () -> load_exn ~dir ~name)

let equal a b =
  a.fat = b.fat
  && Array.length a.contexts = Array.length b.contexts
  && Array.for_all2 Elfie_machine.Context.equal a.contexts b.contexts
  && List.equal (fun (x, p) (y, q) -> x = y && Bytes.equal p q) a.pages b.pages
  && a.icounts = b.icounts && a.schedule = b.schedule
  && a.injections = b.injections && a.brk = b.brk && a.symbols = b.symbols

let pp_summary fmt t =
  Format.fprintf fmt
    "pinball %s: %d thread(s), %d pages (%d bytes), %Ld instructions, %s" t.name
    (num_threads t) (List.length t.pages) (image_bytes t) (total_icount t)
    (if t.fat then "fat" else "lean")
