(* Run any of the paper's tables/figures by id; `all` regenerates the
   full evaluation. Each experiment executes as a supervised job: crashes
   are classified and quarantined instead of killing the batch, and with
   --journal/--resume a killed batch picks up where it left off,
   skipping experiments already journalled as graceful. *)

open Cmdliner
module Supervisor = Elfie_supervise.Supervisor
module Journal = Elfie_supervise.Journal
module Classify = Elfie_supervise.Classify

let run_ids ids retries timeout_ins journal_path resume
    (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let targets =
    match ids with
    | [ "all" ] | [] -> Elfie_harness.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Elfie_harness.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" id
                  (String.concat ", " Elfie_harness.Registry.ids);
                exit 2)
          ids
  in
  let journal = Option.map Journal.open_file journal_path in
  let policy = { Supervisor.default_policy with retries } in
  let budget = { Supervisor.unlimited with ins = timeout_ins } in
  let specs =
    List.map
      (fun (e : Elfie_harness.Registry.experiment) ->
        {
          Supervisor.name = e.id;
          job_inputs = [ e.id; e.title ];
          exec =
            (fun ~seed:_ ~max_ins:_ ->
              Printf.printf "=== %s: %s ===\n%!" e.id e.title;
              let t0 = Unix.gettimeofday () in
              let out = e.run () in
              print_string out;
              Printf.printf "(%.1f s)\n\n%!" (Unix.gettimeofday () -. t0);
              (out, Classify.Graceful));
        })
      targets
  in
  let results = Supervisor.run_batch ~policy ~budget ?journal ~resume specs in
  let quarantined =
    List.filter (fun (_, r, _) -> r.Supervisor.quarantined) results
  in
  List.iter
    (fun (_, (r : Supervisor.report), _) ->
      if r.skipped then
        Printf.printf "=== %s: skipped (journalled graceful) ===\n\n" r.job
      else if r.quarantined then
        Format.printf "=== %s: QUARANTINED — %a ===@.@." r.job
          Supervisor.pp_report r)
    results;
  let skips, saved_ms = Supervisor.resume_savings () in
  if skips > 0 then
    Printf.printf "resume: skipped %d experiment(s), saved ~%.0f ms\n" skips
      saved_ms;
  Option.iter Journal.close journal;
  if quarantined <> [] then begin
    Printf.printf "%d experiment(s) quarantined; re-run with --journal/--resume \
                   to retry only those.\n"
      (List.length quarantined);
    exit 1
  end

let ids_arg =
  let doc = "Experiment ids (fig9, fig10, fig11, table1..table5) or 'all'." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ]
        ~doc:"Supervisor retry budget per experiment for transient failures.")

let timeout_ins_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "timeout-ins" ]
        ~doc:
          "Instruction budget per supervised attempt, for execution paths \
           that honour it.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Append one supervised record per experiment to this file.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip experiments whose latest journal record is graceful; \
           previously failed or interrupted ones re-run. Requires \
           $(b,--journal).")

(* Shared observability flags: --trace/--metrics/--profile[=N]. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N independent machine executions (trials, per-rank \
             region measurements, Fig. 9 benchmarks) concurrently on \
             separate domains; 0 means the host's recommended domain \
             count. Results are identical at any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

let cmd =
  let doc = "regenerate the ELFies paper's evaluation tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const run_ids $ ids_arg $ retries_arg $ timeout_ins_arg $ journal_arg
      $ resume_arg $ obs_flags)

let () = exit (Cmd.eval cmd)
