(* elfied — the ELFie farm batch driver.

   `elfied run` takes a job manifest and fans the jobs across pool
   domains: every pipeline stage goes through the content-addressed
   artifact store (duplicate submissions hit cache), every job runs
   under the supervisor, and completions are journaled so `--resume`
   restarts only unfinished jobs. `elfied serve` exposes a store over a
   Unix-domain socket (one daemon per shard); `elfied run --shard`
   routes store keys across daemons by consistent hashing, degrading to
   local recompute when a shard is down. `elfied stats` inspects a
   store; `elfied gc` evicts oldest artifacts down to a size budget. *)

open Cmdliner
module Store = Elfie_farm.Store
module Driver = Elfie_farm.Driver
module Daemon = Elfie_farm.Daemon
module Shard = Elfie_farm.Shard
module Journal = Elfie_supervise.Journal

let with_obs (trace, metrics, profile, jobs) f =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile f

(* Shared observability flags: --trace/--metrics/--profile[=N]/--jobs. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N manifest jobs concurrently on separate domains; \
             0 means the host's recommended domain count. Results are \
             identical at any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

let store_arg =
  Arg.(
    value
    & opt string "_elfie_farm"
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Artifact store root (created if needed).")

(* --- run ------------------------------------------------------------------- *)

let run_cmd manifest store_root journal_path resume shards obs =
  with_obs obs @@ fun () ->
  match Driver.load_manifest manifest with
  | Error d ->
      Format.eprintf "%s: %a@." manifest Elfie_util.Diag.pp d;
      1
  | Ok jobs_list -> (
      let store = Store.open_store store_root in
      let shard =
        match shards with
        | [] -> None
        | endpoints -> Some (Shard.connect ~local:store ~endpoints ())
      in
      let journal = Option.map Journal.open_file journal_path in
      let finally () =
        Option.iter Journal.close journal;
        Option.iter Shard.close shard
      in
      Fun.protect ~finally @@ fun () ->
      match Driver.run ~store ?shard ?journal ~resume jobs_list with
      | batch ->
          Format.printf "%a@." Driver.pp_batch batch;
          if batch.Driver.b_quarantined > 0 then 2 else 0
      | exception Invalid_argument msg ->
          Format.eprintf "elfied: %s@." msg;
          1)

let run_t =
  let manifest =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "Job manifest: one job per line, `<name> bench=<benchmark> \
             [slice=N] [max-k=N] [warmup=N] [trials=N] [seed=N] \
             [regions=N]`; `#` comments.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append per-job J1 records to FILE (required for --resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip jobs whose latest journal record is graceful with \
             unchanged inputs; only unfinished jobs run.")
  in
  let shards =
    Arg.(
      value
      & opt_all string []
      & info [ "shard" ] ~docv:"SOCKET"
          ~doc:
            "Route store keys across farm daemons (repeatable; each a \
             `elfied serve` socket path) by consistent hashing. A down \
             shard degrades to local recompute — the run still \
             completes.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run a job manifest through the farm")
    Term.(
      const run_cmd $ manifest $ store_arg $ journal $ resume $ shards
      $ obs_flags)

(* --- stats ----------------------------------------------------------------- *)

let stats_cmd store_root =
  let store = Store.open_store store_root in
  Printf.printf "store %s: %Ld bytes\n" (Store.root store)
    (Store.size_bytes store);
  List.iter
    (fun kind ->
      Printf.printf "  %-12s %d artifact(s)\n" (Store.kind_name kind)
        (Store.artifact_count store kind))
    Store.all_kinds;
  let qcount, qbytes, qreasons = Store.quarantine_stats store in
  Printf.printf "  %-12s %d file(s), %Ld bytes\n" "quarantine" qcount qbytes;
  List.iter
    (fun (reason, n) -> Printf.printf "    %-20s %d\n" reason n)
    qreasons;
  List.iter
    (fun (q : Store.quarantine) ->
      Printf.printf "    %s %s %s -> %s\n" q.Store.q_kind
        (String.sub q.Store.q_digest 0 (min 12 (String.length q.Store.q_digest)))
        q.Store.q_reason q.Store.q_moved_to)
    (Store.read_quarantine_log store);
  0

let stats_t =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"artifact counts, store size and the quarantine log")
    Term.(const stats_cmd $ store_arg)

(* --- gc -------------------------------------------------------------------- *)

let gc_cmd store_root max_bytes dry_run =
  let store = Store.open_store store_root in
  let before = Store.size_bytes store in
  if dry_run then begin
    let plan = Store.eviction_plan store ~max_bytes in
    let bytes =
      List.fold_left
        (fun acc (ev : Store.eviction) ->
          Int64.add acc (Int64.of_int ev.Store.ev_bytes))
        0L plan
    in
    List.iter
      (fun (ev : Store.eviction) ->
        Printf.printf "would evict %-12s %s (%d bytes)\n"
          (Store.kind_name ev.Store.ev_kind)
          ev.Store.ev_digest ev.Store.ev_bytes)
      plan;
    Printf.printf
      "dry run: would evict %d artifact(s), %Ld bytes: %Ld -> %Ld bytes \
       (budget %Ld)\n"
      (List.length plan) bytes before (Int64.sub before bytes) max_bytes
  end
  else begin
    let removed = Store.evict store ~max_bytes in
    Printf.printf "evicted %d artifact(s): %Ld -> %Ld bytes (budget %Ld)\n"
      removed before (Store.size_bytes store) max_bytes
  end;
  0

let gc_t =
  let max_bytes =
    Arg.(
      required
      & opt (some int64) None
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:
            "Evict oldest-modified artifacts until the store holds at \
             most N bytes. Quarantined files are never touched.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Print what eviction would remove (keys and bytes) without \
             deleting anything. The order is deterministic: ascending \
             modification time, ties broken by kind then digest.")
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"evict oldest artifacts down to a size budget")
    Term.(const gc_cmd $ store_arg $ max_bytes $ dry_run)

(* --- serve ------------------------------------------------------------------- *)

let serve_cmd store_root socket =
  let store = Store.open_store store_root in
  match Daemon.start ~store ~socket_path:socket () with
  | exception Failure msg ->
      Format.eprintf "elfied: %s@." msg;
      1
  | daemon ->
      let stop = Atomic.make false in
      let on_signal _ = Atomic.set stop true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Printf.printf "elfied: serving %s on %s (pid %d)\n%!"
        (Store.root store) socket (Unix.getpid ());
      while not (Atomic.get stop) do
        Unix.sleepf 0.2
      done;
      Daemon.stop daemon;
      Printf.printf "elfied: stopped\n%!";
      0

let serve_t =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket to listen on. A stale socket file left \
             by a crashed daemon is recovered; a live daemon on the \
             same path is an error.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"serve a store over a Unix-domain socket (one daemon per shard)")
    Term.(const serve_cmd $ store_arg $ socket)

(* --- ping -------------------------------------------------------------------- *)

let ping_cmd sockets =
  List.fold_left
    (fun rc socket ->
      match Shard.ping socket with
      | Ok health ->
          Printf.printf "%s: %s\n" socket health;
          rc
      | Error reason ->
          Printf.printf "%s: DOWN (%s)\n" socket reason;
          1)
    0 sockets

let ping_t =
  let sockets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SOCKET" ~doc:"Daemon socket path(s) to probe.")
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"health-check farm daemons")
    Term.(const ping_cmd $ sockets)

let cmd =
  Cmd.group
    (Cmd.info "elfied"
       ~doc:"crash-safe ELFie farm: cache-backed resumable batch driver")
    [ run_t; serve_t; ping_t; stats_t; gc_t ]

let () = exit (Cmd.eval' cmd)
