(* elfied — the ELFie farm batch driver.

   `elfied run` takes a job manifest and fans the jobs across pool
   domains: every pipeline stage goes through the content-addressed
   artifact store (duplicate submissions hit cache), every job runs
   under the supervisor, and completions are journaled so `--resume`
   restarts only unfinished jobs. `elfied serve` exposes a store over a
   Unix-domain socket (one daemon per shard); `elfied run --shard`
   routes store keys across daemons by consistent hashing, degrading to
   local recompute when a shard is down. `elfied stats` inspects a
   store; `elfied gc` evicts oldest artifacts down to a size budget. *)

open Cmdliner
module Store = Elfie_farm.Store
module Driver = Elfie_farm.Driver
module Daemon = Elfie_farm.Daemon
module Shard = Elfie_farm.Shard
module Fleet = Elfie_farm.Fleet
module Journal = Elfie_supervise.Journal
module Log = Elfie_obs.Log
module Trace = Elfie_obs.Trace

let with_obs (trace, metrics, profile, jobs) f =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile f

(* Shared observability flags: --trace/--metrics/--profile[=N]/--jobs. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N manifest jobs concurrently on separate domains; \
             0 means the host's recommended domain count. Results are \
             identical at any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

let store_arg =
  Arg.(
    value
    & opt string "_elfie_farm"
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Artifact store root (created if needed).")

(* --- run ------------------------------------------------------------------- *)

let run_cmd manifest store_root journal_path resume shards obs =
  with_obs obs @@ fun () ->
  match Driver.load_manifest manifest with
  | Error d ->
      Format.eprintf "%s: %a@." manifest Elfie_util.Diag.pp d;
      1
  | Ok jobs_list -> (
      let store = Store.open_store store_root in
      let shard =
        match shards with
        | [] -> None
        | endpoints ->
            (* With remote shards in play, arm the flight recorder: any
               degrade-to-recompute dumps the recent event ring next to
               the store. *)
            Log.set_flight_path
              (Some (Filename.concat store_root "flight.jsonl"));
            Some (Shard.connect ~local:store ~endpoints ())
      in
      let journal = Option.map Journal.open_file journal_path in
      let finally () =
        Option.iter Journal.close journal;
        Option.iter Shard.close shard
      in
      Fun.protect ~finally @@ fun () ->
      match Driver.run ~store ?shard ?journal ~resume jobs_list with
      | batch ->
          Format.printf "%a@." Driver.pp_batch batch;
          if batch.Driver.b_quarantined > 0 then 2 else 0
      | exception Invalid_argument msg ->
          Format.eprintf "elfied: %s@." msg;
          1)

let run_t =
  let manifest =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "Job manifest: one job per line, `<name> bench=<benchmark> \
             [slice=N] [max-k=N] [warmup=N] [trials=N] [seed=N] \
             [regions=N]`; `#` comments.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append per-job J1 records to FILE (required for --resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip jobs whose latest journal record is graceful with \
             unchanged inputs; only unfinished jobs run.")
  in
  let shards =
    Arg.(
      value
      & opt_all string []
      & info [ "shard" ] ~docv:"SOCKET"
          ~doc:
            "Route store keys across farm daemons (repeatable; each a \
             `elfied serve` socket path) by consistent hashing. A down \
             shard degrades to local recompute — the run still \
             completes.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run a job manifest through the farm")
    Term.(
      const run_cmd $ manifest $ store_arg $ journal $ resume $ shards
      $ obs_flags)

(* --- stats ----------------------------------------------------------------- *)

let stats_cmd store_root =
  let store = Store.open_store store_root in
  Printf.printf "store %s: %Ld bytes\n" (Store.root store)
    (Store.size_bytes store);
  List.iter
    (fun kind ->
      Printf.printf "  %-12s %d artifact(s)\n" (Store.kind_name kind)
        (Store.artifact_count store kind))
    Store.all_kinds;
  let qcount, qbytes, qreasons = Store.quarantine_stats store in
  Printf.printf "  %-12s %d file(s), %Ld bytes\n" "quarantine" qcount qbytes;
  List.iter
    (fun (reason, n) -> Printf.printf "    %-20s %d\n" reason n)
    qreasons;
  List.iter
    (fun (q : Store.quarantine) ->
      Printf.printf "    %s %s %s -> %s\n" q.Store.q_kind
        (String.sub q.Store.q_digest 0 (min 12 (String.length q.Store.q_digest)))
        q.Store.q_reason q.Store.q_moved_to)
    (Store.read_quarantine_log store);
  0

let stats_t =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"artifact counts, store size and the quarantine log")
    Term.(const stats_cmd $ store_arg)

(* --- gc -------------------------------------------------------------------- *)

let gc_cmd store_root max_bytes dry_run =
  let store = Store.open_store store_root in
  let before = Store.size_bytes store in
  if dry_run then begin
    let plan = Store.eviction_plan store ~max_bytes in
    let bytes =
      List.fold_left
        (fun acc (ev : Store.eviction) ->
          Int64.add acc (Int64.of_int ev.Store.ev_bytes))
        0L plan
    in
    List.iter
      (fun (ev : Store.eviction) ->
        Printf.printf "would evict %-12s %s (%d bytes)\n"
          (Store.kind_name ev.Store.ev_kind)
          ev.Store.ev_digest ev.Store.ev_bytes)
      plan;
    Printf.printf
      "dry run: would evict %d artifact(s), %Ld bytes: %Ld -> %Ld bytes \
       (budget %Ld)\n"
      (List.length plan) bytes before (Int64.sub before bytes) max_bytes
  end
  else begin
    let removed = Store.evict store ~max_bytes in
    Printf.printf "evicted %d artifact(s): %Ld -> %Ld bytes (budget %Ld)\n"
      removed before (Store.size_bytes store) max_bytes
  end;
  0

let gc_t =
  let max_bytes =
    Arg.(
      required
      & opt (some int64) None
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:
            "Evict oldest-modified artifacts until the store holds at \
             most N bytes. Quarantined files are never touched.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Print what eviction would remove (keys and bytes) without \
             deleting anything. The order is deterministic: ascending \
             modification time, ties broken by kind then digest.")
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"evict oldest artifacts down to a size budget")
    Term.(const gc_cmd $ store_arg $ max_bytes $ dry_run)

(* --- serve ------------------------------------------------------------------- *)

let serve_cmd store_root socket flight obs =
  with_obs obs @@ fun () ->
  (* Name this process's track in merged traces after its socket. *)
  Trace.set_process_label
    (Printf.sprintf "elfied-serve:%s" (Filename.basename socket));
  let store = Store.open_store store_root in
  (match flight with
  | Some "none" -> ()
  | Some path -> Log.set_flight_path (Some path)
  | None ->
      Log.set_flight_path (Some (Filename.concat store_root "flight.jsonl")));
  match Daemon.start ~store ~socket_path:socket () with
  | exception Failure msg ->
      Format.eprintf "elfied: %s@." msg;
      1
  | daemon ->
      let stop = Atomic.make false in
      let on_signal _ = Atomic.set stop true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      (* Installed after the stop handlers so a fatal signal dumps the
         flight recorder first, then chains into the orderly shutdown. *)
      Log.install_dump_on_signal [ Sys.sigint; Sys.sigterm ];
      Printf.printf "elfied: serving %s on %s (pid %d)\n%!"
        (Store.root store) socket (Unix.getpid ());
      while not (Atomic.get stop) do
        Unix.sleepf 0.2
      done;
      Daemon.stop daemon;
      Printf.printf "elfied: stopped\n%!";
      0

let serve_t =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket to listen on. A stale socket file left \
             by a crashed daemon is recovered; a live daemon on the \
             same path is an error.")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder dump file: the recent structured-event \
             ring is written there on SIGINT/SIGTERM (after which \
             shutdown proceeds). Defaults to flight.jsonl under the \
             store root; `none` disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"serve a store over a Unix-domain socket (one daemon per shard)")
    Term.(const serve_cmd $ store_arg $ socket $ flight $ obs_flags)

(* --- ping -------------------------------------------------------------------- *)

let ping_cmd count sockets =
  List.fold_left
    (fun rc socket ->
      let rtts = ref [] in
      let last_health = ref None in
      let last_error = ref None in
      for _ = 1 to max 1 count do
        let t0 = Unix.gettimeofday () in
        match Shard.ping socket with
        | Ok health ->
            rtts := (Unix.gettimeofday () -. t0) :: !rtts;
            last_health := Some health
        | Error reason -> last_error := Some reason
      done;
      match (!last_health, !rtts) with
      | Some health, (_ :: _ as rtts) ->
          let n = List.length rtts in
          let mn = List.fold_left min infinity rtts *. 1e3 in
          let mx = List.fold_left max 0.0 rtts *. 1e3 in
          let avg = List.fold_left ( +. ) 0.0 rtts *. 1e3 /. float_of_int n in
          Printf.printf "%s: %s\n" socket health;
          Printf.printf
            "  %d/%d ok, rtt min/avg/max = %.3f/%.3f/%.3f ms\n" n
            (max 1 count) mn avg mx;
          if n < max 1 count then 1 else rc
      | _ ->
          Printf.printf "%s: DOWN (%s)\n" socket
            (Option.value ~default:"no-response" !last_error);
          1)
    0 sockets

let ping_t =
  let sockets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SOCKET" ~doc:"Daemon socket path(s) to probe.")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "n"; "count" ] ~docv:"COUNT"
          ~doc:
            "Send COUNT health probes per daemon and report round-trip \
             min/avg/max.")
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"health-check farm daemons, measuring RTT")
    Term.(const ping_cmd $ count $ sockets)

(* --- trace-merge -------------------------------------------------------------- *)

let trace_merge_cmd out inputs =
  match Elfie_obs.Chrome.merge_paths inputs with
  | Error msg ->
      Format.eprintf "elfied: trace-merge: %s@." msg;
      1
  | Ok merged ->
      if out = "-" then print_string merged
      else begin
        let oc = open_out_bin out in
        output_string oc merged;
        output_char oc '\n';
        close_out oc;
        Printf.printf "merged %d trace file(s) into %s\n"
          (List.length inputs) out
      end;
      0

let trace_merge_t =
  let inputs =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Chrome trace_event JSON files, as written by --trace (one \
             per process: client and daemons).")
  in
  let out =
    Arg.(
      value
      & opt string "merged.trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Merged output file; `-` for stdout.")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "merge per-process trace files into one Perfetto timeline \
          (aligned on the wall clock, correlated by trace ID)")
    Term.(const trace_merge_cmd $ out $ inputs)

(* --- top ---------------------------------------------------------------------- *)

let top_cmd interval count sockets =
  let router = Shard.monitor ~endpoints:sockets () in
  Fun.protect ~finally:(fun () -> Shard.close router) @@ fun () ->
  let iterations =
    match (count, interval) with
    | Some c, _ -> max 1 c
    | None, Some _ -> max_int
    | None, None -> 1
  in
  let delay = Option.value ~default:2.0 interval in
  let rec go i =
    let rows = Fleet.scrape_all router in
    if i > 0 then print_newline ();
    Printf.printf "elfied top — %d shard(s), scrape #%d\n%s" (List.length rows)
      (i + 1) (Fleet.render rows);
    flush stdout;
    if i + 1 < iterations then begin
      Unix.sleepf delay;
      go (i + 1)
    end
    else rows
  in
  let rows = go 0 in
  if List.for_all (fun r -> match r.Fleet.r_state with Fleet.Down _ -> true | _ -> false) rows
  then 1
  else 0

let top_t =
  let sockets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SOCKET" ~doc:"Daemon socket path(s) to scrape.")
  in
  let interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:
            "Rescrape every SECONDS (until --count scrapes, or forever); \
             without it, scrape once and exit.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count"; "c" ] ~docv:"N" ~doc:"Stop after N scrapes.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "aggregated live telemetry of a daemon fleet: requests, \
          hit/miss, latency by opcode, breaker state, quarantine, uptime")
    Term.(const top_cmd $ interval $ count $ sockets)

let cmd =
  Cmd.group
    (Cmd.info "elfied"
       ~doc:"crash-safe ELFie farm: cache-backed resumable batch driver")
    [ run_t; serve_t; ping_t; top_t; trace_merge_t; stats_t; gc_t ]

let () = exit (Cmd.eval' cmd)
