(* elfied — the ELFie farm batch driver.

   `elfied run` takes a job manifest and fans the jobs across pool
   domains: every pipeline stage goes through the content-addressed
   artifact store (duplicate submissions hit cache), every job runs
   under the supervisor, and completions are journaled so `--resume`
   restarts only unfinished jobs. `elfied stats` inspects a store;
   `elfied gc` evicts oldest artifacts down to a size budget. *)

open Cmdliner
module Store = Elfie_farm.Store
module Driver = Elfie_farm.Driver
module Journal = Elfie_supervise.Journal

let with_obs (trace, metrics, profile, jobs) f =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile f

(* Shared observability flags: --trace/--metrics/--profile[=N]/--jobs. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N manifest jobs concurrently on separate domains; \
             0 means the host's recommended domain count. Results are \
             identical at any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

let store_arg =
  Arg.(
    value
    & opt string "_elfie_farm"
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Artifact store root (created if needed).")

(* --- run ------------------------------------------------------------------- *)

let run_cmd manifest store_root journal_path resume obs =
  with_obs obs @@ fun () ->
  match Driver.load_manifest manifest with
  | Error d ->
      Format.eprintf "%s: %a@." manifest Elfie_util.Diag.pp d;
      1
  | Ok jobs_list -> (
      let store = Store.open_store store_root in
      let journal = Option.map Journal.open_file journal_path in
      let finally () = Option.iter Journal.close journal in
      Fun.protect ~finally @@ fun () ->
      match Driver.run ~store ?journal ~resume jobs_list with
      | batch ->
          Format.printf "%a@." Driver.pp_batch batch;
          if batch.Driver.b_quarantined > 0 then 2 else 0
      | exception Invalid_argument msg ->
          Format.eprintf "elfied: %s@." msg;
          1)

let run_t =
  let manifest =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "Job manifest: one job per line, `<name> bench=<benchmark> \
             [slice=N] [max-k=N] [warmup=N] [trials=N] [seed=N] \
             [regions=N]`; `#` comments.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append per-job J1 records to FILE (required for --resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip jobs whose latest journal record is graceful with \
             unchanged inputs; only unfinished jobs run.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run a job manifest through the farm")
    Term.(
      const run_cmd $ manifest $ store_arg $ journal $ resume $ obs_flags)

(* --- stats ----------------------------------------------------------------- *)

let stats_cmd store_root =
  let store = Store.open_store store_root in
  Printf.printf "store %s: %Ld bytes\n" (Store.root store)
    (Store.size_bytes store);
  List.iter
    (fun kind ->
      Printf.printf "  %-12s %d artifact(s)\n" (Store.kind_name kind)
        (Store.artifact_count store kind))
    Store.all_kinds;
  let qs = Store.read_quarantine_log store in
  Printf.printf "  %-12s %d file(s)\n" "quarantine" (List.length qs);
  List.iter
    (fun (q : Store.quarantine) ->
      Printf.printf "    %s %s %s -> %s\n" q.Store.q_kind
        (String.sub q.Store.q_digest 0 (min 12 (String.length q.Store.q_digest)))
        q.Store.q_reason q.Store.q_moved_to)
    qs;
  0

let stats_t =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"artifact counts, store size and the quarantine log")
    Term.(const stats_cmd $ store_arg)

(* --- gc -------------------------------------------------------------------- *)

let gc_cmd store_root max_bytes =
  let store = Store.open_store store_root in
  let before = Store.size_bytes store in
  let removed = Store.evict store ~max_bytes in
  Printf.printf "evicted %d artifact(s): %Ld -> %Ld bytes (budget %Ld)\n"
    removed before (Store.size_bytes store) max_bytes;
  0

let gc_t =
  let max_bytes =
    Arg.(
      required
      & opt (some int64) None
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:
            "Evict oldest-modified artifacts until the store holds at \
             most N bytes. Quarantined files are never touched.")
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"evict oldest artifacts down to a size budget")
    Term.(const gc_cmd $ store_arg $ max_bytes)

let cmd =
  Cmd.group
    (Cmd.info "elfied"
       ~doc:"crash-safe ELFie farm: cache-backed resumable batch driver")
    [ run_t; stats_t; gc_t ]

let () = exit (Cmd.eval' cmd)
