(* pinball2elf: convert a pinball into a stand-alone ELFie executable.

     pinball2elf -d /tmp/pbdir -n region -o region.elfie \
        --roi-start ssc:0x1234 --sysstate /tmp/pbdir/region.sysstate

   Mirrors the switches of the paper's tool: ROI markers, counter-based
   graceful exit, monitor thread (elfie_on_exit), object-only output,
   allocatable-stack mode (to reproduce the collision), and a linker
   script dump. *)

open Cmdliner

let parse_marker s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "sniper" ] -> Ok Elfie_core.Pinball2elf.Sniper
  | [ "ssc"; tag ] -> (
      match Int64.of_string_opt tag with
      | Some v -> Ok (Elfie_core.Pinball2elf.Ssc v)
      | None -> Error (`Msg ("bad ssc tag: " ^ tag)))
  | [ "simics"; n ] -> (
      match int_of_string_opt n with
      | Some v -> Ok (Elfie_core.Pinball2elf.Simics v)
      | None -> Error (`Msg ("bad simics code: " ^ n)))
  | _ -> Error (`Msg "expected sniper, ssc:TAG or simics:N")

let marker_conv =
  Arg.conv
    ( parse_marker,
      fun fmt m ->
        Format.pp_print_string fmt
          (match m with
          | Elfie_core.Pinball2elf.Sniper -> "sniper"
          | Ssc v -> Printf.sprintf "ssc:0x%Lx" v
          | Simics n -> Printf.sprintf "simics:%d" n) )

let convert dir name out marker sysstate_dir no_counters monitor object_only
    alloc_stack ldscript dump_contexts =
  let pb = Elfie_pinball.Pinball.load ~dir ~name in
  let sysstate = Option.map (fun dir -> Elfie_pin.Sysstate.load_dir ~dir) sysstate_dir in
  let options =
    {
      Elfie_core.Pinball2elf.alloc_stack_sections = alloc_stack;
      marker;
      arm_counters = not no_counters;
      sysstate;
      monitor_thread = monitor;
      object_only;
      warmup_mark = None;
      extra_on_start = None;
      extra_on_thread_start = None;
      extra_on_exit = None;
    }
  in
  let image = Elfie_core.Pinball2elf.convert ~options pb in
  let bytes = Elfie_elf.Image.write image in
  let oc = open_out_bin out in
  output_bytes oc bytes;
  close_out oc;
  Printf.printf "wrote %s (%d bytes, %d sections, %d symbols, entry 0x%Lx)\n" out
    (Bytes.length bytes)
    (List.length image.sections)
    (List.length image.symbols)
    image.entry;
  (match ldscript with
  | Some path ->
      let oc = open_out path in
      output_string oc (Elfie_core.Pinball2elf.linker_script image);
      close_out oc;
      Printf.printf "linker script written to %s\n" path
  | None -> ());
  match dump_contexts with
  | Some path ->
      let oc = open_out path in
      output_string oc (Elfie_core.Pinball2elf.context_listing pb);
      close_out oc;
      Printf.printf "thread contexts written to %s\n" path
  | None -> ()

let cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Pinball directory.")
  in
  let pb_name =
    Arg.(value & opt string "pinball" & info [ "n"; "name" ] ~doc:"Pinball name.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output ELFie path.")
  in
  let marker =
    Arg.(
      value
      & opt (some marker_conv) None
      & info [ "roi-start" ] ~docv:"TYPE[:TAG]"
          ~doc:"Insert a region-of-interest marker (sniper, ssc:TAG, simics:N).")
  in
  let sysstate =
    Arg.(
      value
      & opt (some string) None
      & info [ "sysstate" ] ~docv:"DIR"
          ~doc:"Embed SYSSTATE re-opening from this pinball_sysstate directory.")
  in
  let no_counters =
    Arg.(
      value & flag
      & info [ "no-counters" ]
          ~doc:"Do not arm per-thread instruction counters (no graceful exit).")
  in
  let monitor =
    Arg.(
      value & flag
      & info [ "monitor" ] ~doc:"Create a monitor thread calling elfie_on_exit().")
  in
  let object_only =
    Arg.(
      value & flag
      & info [ "object" ] ~doc:"Emit an ET_REL object without startup code.")
  in
  let alloc_stack =
    Arg.(
      value & flag
      & info [ "alloc-stack-sections" ]
          ~doc:
            "Emit checkpointed stack pages as allocatable sections (reproduces \
             the stack-collision failure).")
  in
  let ldscript =
    Arg.(
      value
      & opt (some string) None
      & info [ "ldscript" ] ~docv:"FILE" ~doc:"Also write the linker script.")
  in
  let dump_contexts =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-contexts" ] ~docv:"FILE"
          ~doc:"Also dump initial thread contexts as an assembly listing.")
  in
  Term.(
    const convert $ dir $ pb_name $ out $ marker $ sysstate $ no_counters $ monitor
    $ object_only $ alloc_stack $ ldscript $ dump_contexts)

(* --- check ------------------------------------------------------------------ *)

let check path fault_sweep =
  let module Diag = Elfie_util.Diag in
  let bytes =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Bytes.of_string s
    | exception Sys_error msg ->
        prerr_endline (Diag.to_string (Diag.v ~artifact:path Diag.Io_error msg));
        exit 1
  in
  match Elfie_elf.Image.read_result ~artifact:path bytes with
  | Error d ->
      prerr_endline (Diag.to_string d);
      exit 1
  | Ok image -> (
      if fault_sweep then begin
        let report = Elfie_check.Fault_inject.run_elf image in
        Format.printf "fault sweep: %a@." Elfie_check.Fault_inject.pp_report
          report;
        if Elfie_check.Fault_inject.crashes report <> [] then exit 1
      end;
      match Elfie_check.Validate.elf ~artifact:path image with
      | [] ->
          Printf.printf "%s: OK (%d sections, %d symbols, entry 0x%Lx)\n" path
            (List.length image.sections)
            (List.length image.symbols)
            image.entry
      | ds ->
          List.iter (fun d -> prerr_endline (Diag.to_string d)) ds;
          exit 1)

let check_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ELFIE" ~doc:"ELFie (or any ELF image) to validate.")
  in
  let fault_sweep =
    Arg.(
      value & flag
      & info [ "fault-sweep" ]
          ~doc:
            "Also corrupt the image across every fault class and verify that \
             no corruption escapes as a crash.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"validate an ELFie image: parse + consistency checks")
    Term.(const check $ path $ fault_sweep)

let () =
  let info = Cmd.info "pinball2elf" ~doc:"convert a pinball to an ELFie executable" in
  exit (Cmd.eval (Cmd.group ~default:cmd info [ check_cmd ]))
