(* pinplay: the PinPlay logger/replayer CLI.

     pinplay log    -b 525.x264_r -o /tmp/pbdir --start 100000 --length 50000
     pinplay replay -d /tmp/pbdir -n <name> [--injection 0]
     pinplay run    -b 525.x264_r

   Benchmarks come from the bundled SPEC-like suite (see `pinplay list`). *)

open Cmdliner

let find_bench name =
  match Elfie_workloads.Suite.find name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %S (try `pinplay list`)\n" name;
      exit 2

let bench_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to execute.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Scheduler seed.")

(* Shared observability flags: --trace/--metrics/--profile[=N]. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N independent machine executions concurrently on \
             separate domains; 0 means the host's recommended domain \
             count. Results are identical at any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

(* --- run -------------------------------------------------------------------- *)

let run_native bench seed (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let b = find_bench bench in
  let stats =
    Elfie_pin.Run.native (Elfie_workloads.Programs.run_spec ~seed b.spec)
  in
  Printf.printf
    "%s: %Ld instructions, %Ld cycles, CPI %.3f, clean=%b\nstdout: %s" bench
    stats.retired stats.cycles stats.cpi stats.clean stats.stdout

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"run a benchmark natively")
    Term.(const run_native $ bench_arg $ seed_arg $ obs_flags)

(* --- log -------------------------------------------------------------------- *)

let log_region bench seed out name start length fat sysstate
    (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let b = find_bench bench in
  let rs = Elfie_workloads.Programs.run_spec ~seed b.spec in
  let result =
    Elfie_pin.Logger.capture ~fat rs ~name { Elfie_pin.Logger.start; length }
  in
  Elfie_pinball.Pinball.save result.pinball ~dir:out;
  Format.printf "%a@." Elfie_pinball.Pinball.pp_summary result.pinball;
  if not result.reached_end then
    print_endline "warning: program ended inside the region (truncated)";
  if sysstate then begin
    let ss = Elfie_pin.Sysstate.analyze result.pinball in
    let dir = Filename.concat out (name ^ ".sysstate") in
    Elfie_pin.Sysstate.save ss ~dir;
    Format.printf "sysstate written to %s@.%a@." dir Elfie_pin.Sysstate.pp ss
  end;
  Printf.printf "pinball written to %s/%s.*\n" out name

let log_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output pinball directory.")
  in
  let pb_name =
    Arg.(value & opt string "pinball" & info [ "n"; "name" ] ~doc:"Pinball name.")
  in
  let start =
    Arg.(
      value & opt int64 0L
      & info [ "start" ] ~doc:"Region start (aggregate instruction count).")
  in
  let length =
    Arg.(value & opt int64 100_000L & info [ "length" ] ~doc:"Region length.")
  in
  let fat =
    Arg.(
      value & opt bool true
      & info [ "log-fat" ] ~doc:"Record the whole memory image (-log:fat).")
  in
  let sysstate =
    Arg.(
      value & flag
      & info [ "sysstate" ] ~doc:"Also run pinball_sysstate and save its output.")
  in
  Cmd.v
    (Cmd.info "log" ~doc:"capture a region of execution as a pinball")
    Term.(
      const log_region $ bench_arg $ seed_arg $ out $ pb_name $ start $ length $ fat
      $ sysstate $ obs_flags)

(* --- replay ----------------------------------------------------------------- *)

let replay dir name injection no_injection (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let pb = Elfie_pinball.Pinball.load ~dir ~name in
  let mode =
    if injection && not no_injection then Elfie_pin.Replayer.Constrained
    else Elfie_pin.Replayer.Injectionless { seed = 7L; fs_init = (fun _ -> ()) }
  in
  let r = Elfie_pin.Replayer.replay ~mode pb in
  Printf.printf
    "replayed %Ld instructions, matched_icounts=%b, divergences=%d, cycles=%Ld%s\n"
    r.retired r.matched_icounts r.divergences r.cycles
    (if r.capped then " (stopped by instruction cap)" else "");
  match r.first_divergence with
  | Some d ->
      Printf.printf "first divergence: tid %d pc=0x%Lx icount=%Ld (%s)\n"
        d.Elfie_pin.Replayer.div_tid d.div_pc d.div_icount d.div_what
  | None -> ()

let replay_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Pinball directory.")
  in
  let pb_name =
    Arg.(value & opt string "pinball" & info [ "n"; "name" ] ~doc:"Pinball name.")
  in
  let injection =
    Arg.(
      value & opt bool true
      & info [ "injection" ]
          ~doc:"Inject logged syscall results (0 mimics an ELFie run).")
  in
  let no_injection =
    Arg.(
      value & flag
      & info [ "no-injection" ]
          ~doc:
            "Replay without injection (the paper's -replay:injection 0): \
             syscalls re-execute natively, threads schedule freely — the \
             supervisor's escalation mode for debugging divergences.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"replay a pinball (constrained by default)")
    Term.(const replay $ dir $ pb_name $ injection $ no_injection $ obs_flags)

(* --- check ------------------------------------------------------------------ *)

let check dir name do_replay fault_sweep (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let module Diag = Elfie_util.Diag in
  let diags =
    match Elfie_pinball.Pinball.load_result ~dir ~name with
    | Error d -> [ d ]
    | Ok pb ->
        let structural = Elfie_check.Validate.pinball pb in
        let replay =
          if do_replay && structural = [] then
            Elfie_check.Sentinel.cross_check pb
          else []
        in
        if fault_sweep then begin
          let report = Elfie_check.Fault_inject.run_pinball pb in
          Format.printf "fault sweep: %a@." Elfie_check.Fault_inject.pp_report
            report;
          if Elfie_check.Fault_inject.crashes report <> [] then exit 1
        end;
        structural @ replay
  in
  match diags with
  | [] -> Printf.printf "%s/%s.*: OK\n" dir name
  | ds ->
      List.iter (fun d -> Printf.eprintf "%s\n" (Diag.to_string d)) ds;
      exit 1

let check_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Pinball directory.")
  in
  let pb_name =
    Arg.(value & opt string "pinball" & info [ "n"; "name" ] ~doc:"Pinball name.")
  in
  let do_replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Also run the replay divergence sentinel (constrained, then \
             injection-less).")
  in
  let fault_sweep =
    Arg.(
      value & flag
      & info [ "fault-sweep" ]
          ~doc:
            "Also corrupt the serialized pinball across every fault class and \
             verify that no corruption escapes as a crash.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"validate a pinball: parse, consistency checks, optional replay")
    Term.(const check $ dir $ pb_name $ do_replay $ fault_sweep $ obs_flags)

(* --- list ------------------------------------------------------------------- *)

let list_benchmarks () =
  List.iter
    (fun (b : Elfie_workloads.Suite.benchmark) ->
      Printf.printf "%-20s %d thread(s), ~%Ld instructions\n" b.bname
        b.spec.threads
        (Elfie_workloads.Programs.approx_instructions b.spec))
    Elfie_workloads.Suite.all

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"list available benchmarks")
    Term.(const list_benchmarks $ const ())

let () =
  let doc = "PinPlay-style program record/replay toolkit (VX86)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pinplay" ~doc)
          [ run_cmd; log_cmd; replay_cmd; check_cmd; list_cmd ]))
