(* vgdb: an interactive (and scriptable) debugger for ELFies.

     vgdb region.elfie --sysstate dir [--script cmds.txt]

   Commands (one per line; gdb-flavoured):
     b SYMBOL | b 0xADDR      set breakpoint
     d 0xADDR                 delete breakpoint
     c                        continue
     si [N]                   step N instructions (default 1)
     rsi [N]                  reverse-step N instructions (default 1)
     rc                       reverse-continue to the previous breakpoint
     info regs [TID]          registers
     info threads             thread list
     info b                   breakpoints
     x 0xADDR [LEN]           hex dump
     dis [0xADDR] [N]         disassemble (default: current rip)
     sym 0xADDR               nearest symbol
     q                        quit *)

open Cmdliner
module Debugger = Elfie_debug.Debugger

let hex_dump bytes addr =
  Bytes.iteri
    (fun i c ->
      if i mod 16 = 0 then
        Printf.printf "%s%016Lx: " (if i = 0 then "" else "\n")
          (Int64.add addr (Int64.of_int i));
      Printf.printf "%02x " (Char.code c))
    bytes;
  print_newline ()

let show_regs dbg tid =
  let ctx = Debugger.registers dbg ~tid in
  Printf.printf "rip 0x%Lx\n" ctx.Elfie_machine.Context.rip;
  List.iter
    (fun r ->
      Printf.printf "%-4s 0x%Lx\n" (Elfie_isa.Reg.gpr_name r)
        (Elfie_machine.Context.get ctx r))
    Elfie_isa.Reg.all_gprs

let execute dbg line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")
  in
  match words with
  | [] -> true
  | [ "q" ] -> false
  | "b" :: [ target ] ->
      (match Int64.of_string_opt target with
      | Some addr ->
          Debugger.break_at dbg addr;
          Printf.printf "breakpoint at 0x%Lx\n" addr
      | None -> (
          match Debugger.break_symbol dbg target with
          | Ok addr -> Printf.printf "breakpoint at %s (0x%Lx)\n" target addr
          | Error e -> print_endline e));
      true
  | "d" :: [ target ] ->
      (match Int64.of_string_opt target with
      | Some addr -> Debugger.clear_at dbg addr
      | None -> print_endline "expected an address");
      true
  | [ "c" ] ->
      Format.printf "%a@." Debugger.pp_stop (Debugger.continue_ dbg);
      true
  | "si" :: rest ->
      let n = match rest with [ n ] -> int_of_string n | _ -> 1 in
      let rec go i =
        if i < n then
          match Debugger.step dbg with
          | Debugger.Step_done _ -> go (i + 1)
          | stop -> Format.printf "%a@." Debugger.pp_stop stop
      in
      go 0;
      true
  | "rsi" :: rest ->
      let n = match rest with [ n ] -> int_of_string n | _ -> 1 in
      (match Debugger.reverse_stepi ~n dbg with
      | Debugger.Step_done tid ->
          Printf.printf "icount %d (thread %d)\n" (Debugger.icount dbg) tid
      | stop -> Format.printf "%a@." Debugger.pp_stop stop);
      true
  | [ "rc" ] ->
      Format.printf "%a@." Debugger.pp_stop (Debugger.reverse_continue dbg);
      true
  | [ "info"; "regs" ] ->
      show_regs dbg 0;
      true
  | [ "info"; "regs"; tid ] ->
      show_regs dbg (int_of_string tid);
      true
  | [ "info"; "threads" ] ->
      List.iter
        (fun (tid, state, rip) ->
          let where =
            match Debugger.symbol_near dbg rip with
            | Some (name, 0L) -> Printf.sprintf " <%s>" name
            | Some (name, off) -> Printf.sprintf " <%s+%Ld>" name off
            | None -> ""
          in
          Printf.printf "thread %d: %s at 0x%Lx%s\n" tid state rip where)
        (Debugger.thread_summary dbg);
      true
  | [ "info"; "b" ] ->
      List.iter (Printf.printf "0x%Lx\n") (Debugger.breakpoints dbg);
      true
  | "x" :: addr :: rest ->
      let len = match rest with [ n ] -> int_of_string n | _ -> 64 in
      (match Int64.of_string_opt addr with
      | Some a -> (
          match Debugger.read_mem dbg a len with
          | Some bytes -> hex_dump bytes a
          | None -> print_endline "unmapped")
      | None -> print_endline "expected an address");
      true
  | "dis" :: rest ->
      let addr, count =
        match rest with
        | [ a; n ] -> (Int64.of_string a, int_of_string n)
        | [ a ] -> (Int64.of_string a, 10)
        | _ -> ((Debugger.registers dbg ~tid:0).Elfie_machine.Context.rip, 10)
      in
      List.iter
        (fun (a, ins) ->
          let sym =
            match Debugger.symbol_near dbg a with
            | Some (name, 0L) -> Printf.sprintf " <%s>" name
            | _ -> ""
          in
          Printf.printf "  %8Lx%s: %s\n" a sym (Elfie_isa.Insn.to_string ins))
        (Debugger.disassemble dbg ~addr ~count);
      true
  | "sym" :: [ addr ] ->
      (match Debugger.symbol_near dbg (Int64.of_string addr) with
      | Some (name, off) -> Printf.printf "%s+%Ld\n" name off
      | None -> print_endline "no symbol");
      true
  | _ ->
      print_endline "unknown command (b/d/c/si/rsi/rc/info/x/dis/sym/q)";
      true

let main path sysstate_dir script =
  let ic = open_in_bin path in
  let image =
    Elfie_elf.Image.read (Bytes.of_string (really_input_string ic (in_channel_length ic)))
  in
  close_in ic;
  let fs_init fs =
    match sysstate_dir with
    | Some dir ->
        Elfie_pin.Sysstate.install (Elfie_pin.Sysstate.load_dir ~dir) fs
          ~workdir:"/work"
    | None -> ()
  in
  let dbg = Debugger.launch ~fs_init ~cwd:"/work" image in
  let input =
    match script with Some f -> open_in f | None -> stdin
  in
  let interactive = script = None in
  let rec repl () =
    if interactive then (print_string "(vgdb) "; flush stdout);
    match input_line input with
    | line -> if execute dbg line then repl ()
    | exception End_of_file -> ()
  in
  repl ()

let cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ELFIE" ~doc:"ELFie file.")
  in
  let sysstate =
    Arg.(
      value & opt (some string) None
      & info [ "sysstate" ] ~docv:"DIR" ~doc:"Sysstate directory.")
  in
  let script =
    Arg.(
      value & opt (some string) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Run commands from a file.")
  in
  Cmd.v
    (Cmd.info "vgdb" ~doc:"debug an ELFie")
    Term.(const main $ path $ sysstate $ script)

let () = exit (Cmd.eval cmd)
