(* elfie_run: load and execute an ELFie natively on the Vkernel machine.

     elfie_run region.elfie --sysstate /tmp/pbdir/region.sysstate --trials 3

   The sysstate directory is installed into the process's (virtual)
   working directory before the run, as if the ELFie were executed in
   the sysstate/workdir of the paper. *)

open Cmdliner

let run path sysstate_dir seed trials max_ins timeout_ins retries journal_path
    resume disasm (trace, metrics, profile, jobs) =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  Elfie_obs.Report.with_reporting ?trace ?metrics ?profile @@ fun () ->
  let ic = open_in_bin path in
  let bytes = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let image =
    match Elfie_elf.Image.read_result ~artifact:path bytes with
    | Ok image -> image
    | Error d ->
        Printf.eprintf "not a loadable ELFie: %s\n" (Elfie_util.Diag.to_string d);
        exit 2
  in
  Format.printf "%a@." Elfie_elf.Image.pp image;
  if disasm then begin
    match Elfie_elf.Image.find_section image ".elfie.text" with
    | Some s ->
        print_endline "startup code:";
        List.iter
          (fun (off, ins) ->
            Printf.printf "  %8Lx: %s\n"
              (Int64.add s.addr (Int64.of_int off))
              (Elfie_isa.Insn.to_string ins))
          (Elfie_isa.Codec.disassemble s.data ~off:0 ~count:40)
    | None -> print_endline "(no .elfie.text section)"
  end;
  let fs_init fs =
    match sysstate_dir with
    | Some dir ->
        let ss = Elfie_pin.Sysstate.load_dir ~dir in
        Elfie_pin.Sysstate.install ss fs ~workdir:"/work"
    | None -> ()
  in
  let module Supervisor = Elfie_supervise.Supervisor in
  let module Journal = Elfie_supervise.Journal in
  let journal = Option.map Journal.open_file journal_path in
  let budget =
    {
      Supervisor.ins = Some (Option.value ~default:max_ins timeout_ins);
      wall_s = None;
    }
  in
  for i = 0 to trials - 1 do
    let policy =
      {
        Supervisor.default_policy with
        retries;
        base_seed = Int64.add seed (Int64.of_int i);
      }
    in
    let job = Printf.sprintf "%s#trial%d" (Filename.basename path) i in
    let report, outcome =
      Supervisor.run_elfie ~job ~policy ~budget ?journal ~resume
        ~inputs:[ path; Int64.to_string seed; string_of_int i ]
        ~fs_init ~cwd:"/work" image
    in
    if report.Supervisor.skipped then
      Printf.printf "trial %d: skipped (journalled graceful)\n" i
    else begin
      (match outcome with
      | Some o when o.Elfie_core.Elfie_runner.load_error <> None ->
          Printf.printf "trial %d: process killed by loader: %s\n" i
            (Option.get o.load_error)
      | Some o ->
          Printf.printf
            "trial %d: graceful=%b region_instructions=%Ld cpi=%.3f%s%s\n" i
            o.Elfie_core.Elfie_runner.graceful o.app_retired o.region_cpi
            (match o.fault with Some f -> " fault: " ^ f | None -> "")
            (if o.stdout = "" then ""
             else " stdout: " ^ String.escaped o.stdout)
      | None -> ());
      if report.Supervisor.quarantined || List.length report.attempts > 1 then
        Format.printf "  supervisor: %a@." Supervisor.pp_report report
    end
  done;
  let skips, saved_ms = Supervisor.resume_savings () in
  if skips > 0 then
    Printf.printf "resume: skipped %d trial(s), saved ~%.0f ms\n" skips saved_ms;
  Option.iter Journal.close journal

(* Shared observability flags: --trace/--metrics/--profile[=N]. *)
let obs_flags =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (load it at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus text exposition of all metrics and print \
             the summary table.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some 97) (some int) None
      & info [ "profile" ] ~docv:"N"
          ~doc:
            "Sample the PC every N retired instructions (default 97) and \
             print the top-K hot-region report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run up to N independent machine executions (trials, region \
             measurements) concurrently on separate domains; 0 means the \
             host's recommended domain count. Results are identical at \
             any value.")
  in
  Term.(const (fun t m p j -> (t, m, p, j)) $ trace $ metrics $ profile $ jobs)

let cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ELFIE" ~doc:"ELFie file.")
  in
  let sysstate =
    Arg.(
      value
      & opt (some string) None
      & info [ "sysstate" ] ~docv:"DIR" ~doc:"Sysstate directory to install.")
  in
  let seed = Arg.(value & opt int64 11L & info [ "seed" ] ~doc:"Base scheduler seed.") in
  let trials = Arg.(value & opt int 1 & info [ "trials" ] ~doc:"Number of runs.") in
  let max_ins =
    Arg.(
      value & opt int64 100_000_000L
      & info [ "max-ins" ] ~doc:"Safety cap on executed instructions.")
  in
  let timeout_ins =
    Arg.(
      value
      & opt (some int64) None
      & info [ "timeout-ins" ]
          ~doc:
            "Supervised instruction budget per attempt (overrides \
             $(b,--max-ins)); a run stopped by it classifies as a runaway \
             and gets one raised-budget retry.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ]
          ~doc:
            "Supervisor retry budget for transient failures (stack \
             collisions, syscall failures); each retry reseeds stack \
             randomization.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append supervised job records to this journal file.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip trials whose latest journal record is graceful (same \
             inputs); requires $(b,--journal).")
  in
  let disasm =
    Arg.(value & flag & info [ "disassemble" ] ~doc:"Dump the startup code.")
  in
  Cmd.v
    (Cmd.info "elfie_run" ~doc:"run an ELFie natively (supervised)")
    Term.(
      const run $ path $ sysstate $ seed $ trials $ max_ins $ timeout_ins
      $ retries $ journal $ resume $ disasm $ obs_flags)

let () = exit (Cmd.eval cmd)
