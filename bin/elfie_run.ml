(* elfie_run: load and execute an ELFie natively on the Vkernel machine.

     elfie_run region.elfie --sysstate /tmp/pbdir/region.sysstate --trials 3

   The sysstate directory is installed into the process's (virtual)
   working directory before the run, as if the ELFie were executed in
   the sysstate/workdir of the paper. *)

open Cmdliner

let run path sysstate_dir seed trials max_ins disasm =
  let ic = open_in_bin path in
  let bytes = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let image =
    match Elfie_elf.Image.read_result ~artifact:path bytes with
    | Ok image -> image
    | Error d ->
        Printf.eprintf "not a loadable ELFie: %s\n" (Elfie_util.Diag.to_string d);
        exit 2
  in
  Format.printf "%a@." Elfie_elf.Image.pp image;
  if disasm then begin
    match Elfie_elf.Image.find_section image ".elfie.text" with
    | Some s ->
        print_endline "startup code:";
        List.iter
          (fun (off, ins) ->
            Printf.printf "  %8Lx: %s\n"
              (Int64.add s.addr (Int64.of_int off))
              (Elfie_isa.Insn.to_string ins))
          (Elfie_isa.Codec.disassemble s.data ~off:0 ~count:40)
    | None -> print_endline "(no .elfie.text section)"
  end;
  let fs_init fs =
    match sysstate_dir with
    | Some dir ->
        let ss = Elfie_pin.Sysstate.load_dir ~dir in
        Elfie_pin.Sysstate.install ss fs ~workdir:"/work"
    | None -> ()
  in
  for i = 0 to trials - 1 do
    let outcome =
      Elfie_core.Elfie_runner.run
        ~seed:(Int64.add seed (Int64.of_int i))
        ~fs_init ~cwd:"/work" ~max_ins image
    in
    match outcome.load_error with
    | Some msg -> Printf.printf "trial %d: process killed by loader: %s\n" i msg
    | None ->
        Printf.printf
          "trial %d: graceful=%b region_instructions=%Ld cpi=%.3f%s%s\n" i
          outcome.graceful outcome.app_retired outcome.region_cpi
          (match outcome.fault with Some f -> " fault: " ^ f | None -> "")
          (if outcome.stdout = "" then "" else " stdout: " ^ String.escaped outcome.stdout)
  done

let cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ELFIE" ~doc:"ELFie file.")
  in
  let sysstate =
    Arg.(
      value
      & opt (some string) None
      & info [ "sysstate" ] ~docv:"DIR" ~doc:"Sysstate directory to install.")
  in
  let seed = Arg.(value & opt int64 11L & info [ "seed" ] ~doc:"Base scheduler seed.") in
  let trials = Arg.(value & opt int 1 & info [ "trials" ] ~doc:"Number of runs.") in
  let max_ins =
    Arg.(
      value & opt int64 100_000_000L
      & info [ "max-ins" ] ~doc:"Safety cap on executed instructions.")
  in
  let disasm =
    Arg.(value & flag & info [ "disassemble" ] ~doc:"Dump the startup code.")
  in
  Cmd.v
    (Cmd.info "elfie_run" ~doc:"run an ELFie natively")
    Term.(const run $ path $ sysstate $ seed $ trials $ max_ins $ disasm)

let () = exit (Cmd.eval cmd)
