(* pinpoints: the full PinPoints methodology as a command.

     pinpoints -b 557.xz_r -o /tmp/xz_regions --slice 50000 --warmup 200000

   Profiles the benchmark into basic-block vectors, runs SimPoint, and
   (optionally) captures every selected region as a pinball in one
   batched execution, writing pinballs + sysstate + ELFies to the output
   directory. *)

open Cmdliner

module Simpoint = Elfie_simpoint.Simpoint

let run bench seed slice warmup max_k jobs out =
  Elfie_util.Pool.set_default_jobs
    (if jobs = 0 then Elfie_util.Pool.recommended () else jobs);
  let b =
    match Elfie_workloads.Suite.find bench with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %S\n" bench;
        exit 2
  in
  let rs = Elfie_workloads.Programs.run_spec ~seed b.spec in
  let params =
    { Simpoint.default_params with slice_size = slice; warmup; max_k }
  in
  Printf.printf "profiling %s...\n%!" bench;
  let profile = Elfie_pin.Bbv.profile rs ~slice_size:slice in
  let sel = Simpoint.select ~params profile in
  Format.printf "%a@." Simpoint.pp_selection sel;
  match out with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let requests =
        List.map
          (fun (r : Simpoint.region) ->
            ( Printf.sprintf "c%d" r.cluster,
              { Elfie_pin.Logger.start = r.start; length = r.length } ))
          sel.regions
      in
      Printf.printf "capturing %d regions in one pass...\n%!" (List.length requests);
      let captured = Elfie_pin.Logger.capture_many rs requests in
      List.iter
        (fun (name, { Elfie_pin.Logger.pinball; reached_end }) ->
          if not reached_end then
            Printf.printf "  %s: truncated, skipped\n" name
          else begin
            Elfie_pinball.Pinball.save pinball ~dir;
            let ss = Elfie_pin.Sysstate.analyze pinball in
            Elfie_pin.Sysstate.save ss ~dir:(Filename.concat dir (name ^ ".sysstate"));
            let region =
              List.find (fun r -> Printf.sprintf "c%d" r.Simpoint.cluster = name)
                sel.regions
            in
            let image =
              Elfie_core.Pinball2elf.convert
                ~options:
                  {
                    Elfie_core.Pinball2elf.default_options with
                    sysstate = Some ss;
                    marker = Some (Elfie_core.Pinball2elf.Ssc 0x4649L);
                    warmup_mark =
                      (if region.Simpoint.warmup_actual > 0L then
                         Some region.Simpoint.warmup_actual
                       else None);
                  }
                pinball
            in
            let path = Filename.concat dir (name ^ ".elfie") in
            let oc = open_out_bin path in
            output_bytes oc (Elfie_elf.Image.write image);
            close_out oc;
            Printf.printf "  %s: weight %.3f -> %s\n" name region.Simpoint.weight path
          end)
        captured

let cmd =
  let bench =
    Arg.(
      required
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to analyse.")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Scheduler seed.") in
  let slice =
    Arg.(value & opt int64 50_000L & info [ "slice" ] ~doc:"Slice size (instructions).")
  in
  let warmup =
    Arg.(value & opt int64 200_000L & info [ "warmup" ] ~doc:"Warmup length.")
  in
  let max_k = Arg.(value & opt int 50 & info [ "maxk" ] ~doc:"Maximum clusters.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Fan the k-means model-selection sweep across up to N domains; \
             0 means the host's recommended domain count. Results are \
             identical at any value.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Capture the selected regions and write pinballs + ELFies here.")
  in
  Cmd.v
    (Cmd.info "pinpoints" ~doc:"SimPoint phase analysis and region capture")
    Term.(const run $ bench $ seed $ slice $ warmup $ max_k $ jobs $ out)

let () = exit (Cmd.eval cmd)
