; dotprod.s — a hand-written VX86 assembly example for vx86asm.
;
;   dune exec bin/vx86asm.exe -- run examples/dotprod.s
;
; Computes the dot product of two 8-element vectors living in .quad
; data, prints nothing (we have no printf), and exits with the low byte
; of the result as its status (2*1+3*2+...=240 -> exit 240 & 0xff).

_start:
    mov   rsi, vec_a
    mov   rdi, vec_b
    mov   rcx, 8
    mov   rax, 0            ; accumulator
loop:
    mov   rdx, [rsi]
    mov   rbx, [rdi]
    imul  rdx, rbx
    add   rax, rdx
    add   rsi, 8
    add   rdi, 8
    sub   rcx, 1
    jne   loop
    and   rax, 0xff
    mov   rdi, rax
    mov   rax, 231          ; exit_group
    syscall

.align 8
vec_a:
    .quad 1, 2, 3, 4, 5, 6, 7, 8
vec_b:
    .quad 2, 3, 4, 5, 6, 7, 8, 9
